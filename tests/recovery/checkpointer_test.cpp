// The Checkpointer's graceful degradation: StarvationError from a capped
// scan triggers exponential backoff and a retry of the whole scan; the
// retry cap throws CheckpointAbandoned; the periodic run() loop survives
// abandonment.  Plus the satellite's direct unit tests of the
// max_attempts= registry option reaching the capped baselines' throw
// path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "baseline/double_collect.h"
#include "exec/thread_registry.h"
#include "persist/checkpoint.h"
#include "recovery/checkpointer.h"
#include "registry/registry.h"

namespace psnap::recovery {
namespace {

namespace fs = std::filesystem;
using persist::CheckpointData;
using persist::CheckpointLoader;
using persist::CheckpointWriter;

struct TempDir {
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "psnap-reco-XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// Delegates to a real snapshot but throws StarvationError for the first
// `failures` scans -- the deterministic stand-in for a scan losing races
// to a fast writer or a stalled worker.
class FlakySnapshot final : public core::PartialSnapshot {
 public:
  FlakySnapshot(core::PartialSnapshot& inner, std::uint64_t failures)
      : inner_(inner), failures_left_(failures) {}

  std::uint32_t num_components() const override {
    return inner_.num_components();
  }
  std::string_view name() const override { return "flaky"; }
  bool is_wait_free() const override { return false; }
  bool is_local() const override { return inner_.is_local(); }
  std::uint32_t add_components(std::uint32_t count) override {
    return inner_.add_components(count);
  }
  void update(std::uint32_t i, std::uint64_t v) override {
    inner_.update(i, v);
  }
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override {
    if (failures_left_ > 0) {
      --failures_left_;
      throw baseline::StarvationError(99);
    }
    inner_.scan(indices, out, ctx);
  }

 private:
  core::PartialSnapshot& inner_;
  std::uint64_t failures_left_;
};

Checkpointer::Options test_options(
    std::vector<std::chrono::microseconds>* sleeps) {
  Checkpointer::Options options;
  options.impl_spec = "fig3_cas";
  options.initial_m = 4;
  options.max_threads = 4;
  options.backoff.max_attempts = 8;
  options.backoff.initial = std::chrono::microseconds(100);
  options.backoff.max = std::chrono::microseconds(800);
  options.backoff.multiplier = 2.0;
  if (sleeps != nullptr) {
    options.sleep = [sleeps](std::chrono::microseconds d) {
      sleeps->push_back(d);
    };
  }
  return options;
}

TEST(Checkpointer, RetriesWithExponentialBackoff) {
  exec::ThreadHandle pid;
  auto inner = registry::make_snapshot("fig3_cas", 4, 4);
  inner->update(0, 42);
  FlakySnapshot flaky(*inner, /*failures=*/5);

  TempDir dir;
  CheckpointWriter writer(dir.path);
  std::vector<std::chrono::microseconds> sleeps;
  Checkpointer ck(flaky, writer, test_options(&sleeps));

  CheckpointData frame;
  ck.capture(frame);

  // 5 starved attempts, each followed by a backoff sleep doubling from
  // 100us and capped at 800us; the 6th attempt succeeds.
  ASSERT_EQ(sleeps.size(), 5u);
  EXPECT_EQ(sleeps[0].count(), 100);
  EXPECT_EQ(sleeps[1].count(), 200);
  EXPECT_EQ(sleeps[2].count(), 400);
  EXPECT_EQ(sleeps[3].count(), 800);
  EXPECT_EQ(sleeps[4].count(), 800);
  EXPECT_EQ(ck.stats().scan_attempts, 6u);
  EXPECT_EQ(ck.stats().starved_scans, 5u);
  EXPECT_EQ(ck.stats().abandoned, 0u);
  EXPECT_EQ(frame.values[0], 42u);
  EXPECT_EQ(frame.num_components, 4u);
  EXPECT_EQ(frame.impl_spec, "fig3_cas");
}

TEST(Checkpointer, RetryCapThrowsCheckpointAbandoned) {
  exec::ThreadHandle pid;
  auto inner = registry::make_snapshot("fig3_cas", 4, 4);
  FlakySnapshot flaky(*inner, /*failures=*/1000);

  TempDir dir;
  CheckpointWriter writer(dir.path);
  std::vector<std::chrono::microseconds> sleeps;
  auto options = test_options(&sleeps);
  options.backoff.max_attempts = 3;
  Checkpointer ck(flaky, writer, options);

  CheckpointData frame;
  try {
    ck.capture(frame);
    FAIL() << "expected CheckpointAbandoned";
  } catch (const CheckpointAbandoned& e) {
    EXPECT_EQ(e.attempts, 3u);
  }
  // No sleep after the final, abandoning attempt.
  EXPECT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(ck.stats().abandoned, 1u);
  EXPECT_EQ(ck.stats().starved_scans, 3u);
}

TEST(Checkpointer, RunLoopSurvivesAbandonment) {
  exec::ThreadHandle pid;
  auto inner = registry::make_snapshot("fig3_cas", 4, 4);
  FlakySnapshot flaky(*inner, /*failures=*/~std::uint64_t{0});

  TempDir dir;
  CheckpointWriter writer(dir.path);
  auto options = test_options(nullptr);
  options.backoff.max_attempts = 2;
  options.sleep = [](std::chrono::microseconds) {
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  };
  Checkpointer ck(flaky, writer, options);

  std::atomic<bool> stop{false};
  std::thread runner([&] {
    exec::ThreadHandle runner_pid;
    ck.run(stop, std::chrono::microseconds(100));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  runner.join();

  EXPECT_GE(ck.stats().abandoned, 1u);
  EXPECT_EQ(ck.stats().frames_committed, 0u);
}

TEST(Checkpointer, CommitsSequencedFrames) {
  exec::ThreadHandle pid;
  auto snap = registry::make_snapshot("fig3_cas", 4, 4);
  snap->update(2, 7);

  TempDir dir;
  CheckpointWriter writer(dir.path);
  Checkpointer ck(*snap, writer, test_options(nullptr));
  ck.set_next_sequence(41);
  ck.checkpoint_now();
  snap->update(2, 8);
  ck.checkpoint_now();
  EXPECT_EQ(ck.next_sequence(), 43u);
  EXPECT_EQ(ck.stats().frames_committed, 2u);

  auto loaded = CheckpointLoader(dir.path).load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 42u);
  EXPECT_EQ(loaded->values[2], 8u);
}

TEST(Checkpointer, PartialCaptureRecordsIndices) {
  exec::ThreadHandle pid;
  auto snap = registry::make_snapshot("fig3_cas", 8, 4);
  snap->update(1, 11);
  snap->update(5, 55);

  TempDir dir;
  CheckpointWriter writer(dir.path);
  Checkpointer ck(*snap, writer, test_options(nullptr));
  CheckpointData frame;
  std::vector<std::uint32_t> indices{1, 5};
  ck.capture(indices, frame);
  EXPECT_FALSE(frame.is_full());
  EXPECT_EQ(frame.indices, indices);
  ASSERT_EQ(frame.values.size(), 2u);
  EXPECT_EQ(frame.values[0], 11u);
  EXPECT_EQ(frame.values[1], 55u);
}

TEST(Checkpointer, CapturesVersionedEpoch) {
  exec::ThreadHandle pid;
  auto snap = registry::make_snapshot("fig3_cas:value=versioned", 4, 4);
  snap->update(0, 1);
  snap->update(0, 2);

  TempDir dir;
  CheckpointWriter writer(dir.path);
  Checkpointer ck(*snap, writer, test_options(nullptr));
  CheckpointData frame;
  ck.capture(frame);
  EXPECT_EQ(frame.value_plane, "versioned");
  EXPECT_GT(frame.epoch, 0u);
  EXPECT_EQ(frame.values[0], 2u);
}

// ---- The max_attempts= registry option (satellite) ----

TEST(MaxAttemptsOption, DoubleCollectThrowDeterministic) {
  // One collect can never produce two identical consecutive collects, so
  // max_attempts=1 starves every scan -- the direct, schedule-free unit
  // test of the retry-cap/throw path the Checkpointer degrades on.
  exec::ThreadHandle pid;
  auto snap = registry::make_snapshot("double_collect:max_attempts=1", 4, 4);
  std::vector<std::uint64_t> out;
  EXPECT_THROW(snap->scan(std::vector<std::uint32_t>{0}, out),
               baseline::StarvationError);
}

TEST(MaxAttemptsOption, CapAliasStillWorksAndMaxAttemptsWins) {
  exec::ThreadHandle pid;
  auto capped = registry::make_snapshot("double_collect:cap=1", 4, 4);
  std::vector<std::uint64_t> out;
  EXPECT_THROW(capped->scan(std::vector<std::uint32_t>{0}, out),
               baseline::StarvationError);

  // max_attempts=0 (retry forever) overrides cap=1: the scan succeeds.
  auto uncapped =
      registry::make_snapshot("double_collect:cap=1,max_attempts=0", 4, 4);
  uncapped->scan(std::vector<std::uint32_t>{0}, out);
  EXPECT_EQ(out[0], 0u);
}

TEST(MaxAttemptsOption, SeqlockThrowsUnderWriterPressure) {
  // The seqlock's starvation needs a real concurrent writer; a hammering
  // updater makes a max_attempts=1 scan fail fast.
  auto snap = registry::make_snapshot("seqlock:max_attempts=1", 2, 4);
  std::atomic<bool> stop{false};
  std::thread writer_thread([&] {
    exec::ThreadHandle wpid;
    std::uint64_t k = 0;
    while (!stop.load(std::memory_order_acquire)) snap->update(0, ++k);
  });

  exec::ThreadHandle pid;
  std::vector<std::uint64_t> out;
  bool starved = false;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!starved && std::chrono::steady_clock::now() < deadline) {
    try {
      snap->scan(std::vector<std::uint32_t>{0, 1}, out);
    } catch (const baseline::StarvationError&) {
      starved = true;
    }
  }
  stop.store(true);
  writer_thread.join();
  EXPECT_TRUE(starved);
}

TEST(MaxAttemptsOption, GracefulDegradationEndToEnd) {
  // The whole satellite story on a real capped object: a hammering
  // writer starves capped scans, the Checkpointer backs off and retries,
  // and a checkpoint still commits (writer stops => retry succeeds).
  auto snap = registry::make_snapshot("seqlock:max_attempts=2", 2, 4);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates{0};
  std::thread writer_thread([&] {
    exec::ThreadHandle wpid;
    std::uint64_t k = 0;
    while (!stop.load(std::memory_order_acquire)) {
      snap->update(0, ++k);
      updates.store(k, std::memory_order_release);
    }
  });

  exec::ThreadHandle pid;
  TempDir dir;
  CheckpointWriter writer(dir.path);
  auto options = test_options(nullptr);
  options.impl_spec = "seqlock:max_attempts=2";
  options.initial_m = 2;
  options.backoff.max_attempts = ~std::uint64_t{0};  // retry until quiet
  options.sleep = [&](std::chrono::microseconds) {
    // The backoff window is where the writer gets stopped: after a few
    // starved attempts the contention source goes away, as it would in a
    // draining service.
    static int backoffs = 0;
    if (++backoffs >= 3) stop.store(true, std::memory_order_release);
  };
  Checkpointer ck(*snap, writer, options);
  ck.checkpoint_now();
  stop.store(true);
  writer_thread.join();

  EXPECT_EQ(ck.stats().frames_committed, 1u);
  auto loaded = CheckpointLoader(dir.path).load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_components, 2u);
}

}  // namespace
}  // namespace psnap::recovery
