#include "segarray/segmented_array.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace psnap::segarray {
namespace {

TEST(SegmentedArray, ElementsValueInitialized) {
  SegmentedArray<std::atomic<std::uint64_t>, 16, 8> arr;
  EXPECT_EQ(arr.at(0).load(), 0u);
  EXPECT_EQ(arr.at(100).load(), 0u);
}

TEST(SegmentedArray, WriteReadAcrossSegments) {
  SegmentedArray<std::atomic<std::uint64_t>, 16, 8> arr;
  for (std::uint64_t i = 0; i < 100; ++i) {
    arr.at(i).store(i * 3);
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(arr.at(i).load(), i * 3);
  }
}

TEST(SegmentedArray, SegmentsAllocatedLazily) {
  SegmentedArray<std::atomic<std::uint64_t>, 16, 8> arr;
  EXPECT_EQ(arr.allocated_segments(), 0u);
  arr.at(0).store(1);
  EXPECT_EQ(arr.allocated_segments(), 1u);
  arr.at(17).store(1);  // second segment
  EXPECT_EQ(arr.allocated_segments(), 2u);
  arr.at(1).store(1);  // existing segment
  EXPECT_EQ(arr.allocated_segments(), 2u);
}

TEST(SegmentedArray, TryAtDoesNotAllocate) {
  SegmentedArray<std::atomic<std::uint64_t>, 16, 8> arr;
  EXPECT_EQ(arr.try_at(5), nullptr);
  EXPECT_EQ(arr.allocated_segments(), 0u);
  arr.at(5).store(7);
  ASSERT_NE(arr.try_at(5), nullptr);
  EXPECT_EQ(arr.try_at(5)->load(), 7u);
}

TEST(SegmentedArray, ReferencesAreStable) {
  SegmentedArray<std::atomic<std::uint64_t>, 16, 8> arr;
  auto& slot = arr.at(3);
  slot.store(11);
  // Touch many other segments; the original reference must stay valid.
  for (std::uint64_t i = 16; i < 128; i += 16) arr.at(i).store(1);
  EXPECT_EQ(arr.at(3).load(), 11u);
  EXPECT_EQ(&arr.at(3), &slot);
}

TEST(SegmentedArray, CapacityComputed) {
  using Small = SegmentedArray<std::atomic<std::uint64_t>, 16, 8>;
  EXPECT_EQ(Small::capacity(), 128u);
}

TEST(SegmentedArrayDeathTest, OutOfCapacityAborts) {
  SegmentedArray<std::atomic<std::uint64_t>, 16, 8> arr;
  EXPECT_DEATH(arr.at(128), "capacity");
}

TEST(SegmentedArray, ConcurrentInstallRace) {
  // Many threads hammer the same fresh segments; each slot must end up
  // with exactly the values written (no lost segment, no double install).
  constexpr int kThreads = 4;
  constexpr std::uint64_t kSlots = 512;
  SegmentedArray<std::atomic<std::uint64_t>, 64, 16> arr;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arr, t] {
      for (std::uint64_t i = 0; i < kSlots; ++i) {
        arr.at(i).fetch_add(std::uint64_t(t) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Sum of 1..kThreads added once per slot.
  constexpr std::uint64_t kExpected = kThreads * (kThreads + 1) / 2;
  for (std::uint64_t i = 0; i < kSlots; ++i) {
    ASSERT_EQ(arr.at(i).load(), kExpected) << "slot " << i;
  }
}

TEST(SegmentedArray, ConcurrentDisjointWriters) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 1000;
  SegmentedArray<std::atomic<std::uint64_t>, 128, 64> arr;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arr, t] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        std::uint64_t idx = std::uint64_t(t) * kPer + i;
        arr.at(idx).store(idx + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::uint64_t i = 0; i < kThreads * kPer; ++i) {
    ASSERT_EQ(arr.at(i).load(), i + 1);
  }
}

}  // namespace
}  // namespace psnap::segarray
