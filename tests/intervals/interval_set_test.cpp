#include "intervals/interval_set.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace psnap::intervals {
namespace {

TEST(IntervalSet, EmptyBehaviour) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.cardinality(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.is_canonical());
}

TEST(IntervalSet, FromPointsCoalescesRuns) {
  auto s = IntervalSet::from_points({1, 2, 3, 7, 9, 10});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.intervals()[0], (Interval{1, 3}));
  EXPECT_EQ(s.intervals()[1], (Interval{7, 7}));
  EXPECT_EQ(s.intervals()[2], (Interval{9, 10}));
  EXPECT_TRUE(s.is_canonical());
}

TEST(IntervalSet, FromPointsDuplicatesIgnored) {
  auto s = IntervalSet::from_points({5, 5, 5});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.cardinality(), 1u);
}

TEST(IntervalSet, FromIntervalsMergesOverlap) {
  auto s = IntervalSet::from_intervals({{1, 5}, {3, 8}, {10, 12}});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{1, 8}));
  EXPECT_EQ(s.intervals()[1], (Interval{10, 12}));
}

TEST(IntervalSet, FromIntervalsMergesAdjacent) {
  auto s = IntervalSet::from_intervals({{1, 2}, {3, 4}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{1, 4}));
}

TEST(IntervalSet, NoCoalesceKeepsAdjacentSeparate) {
  auto s = IntervalSet::from_points({1, 2, 3}, /*merge_adjacent=*/false);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.cardinality(), 3u);
  // Overlap must still merge even in no-coalesce mode.
  auto t = IntervalSet::from_intervals({{1, 5}, {2, 3}}, false);
  EXPECT_EQ(t.size(), 1u);
}

TEST(IntervalSet, ContainsOnBoundaries) {
  auto s = IntervalSet::from_intervals({{10, 20}});
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(15));
  EXPECT_TRUE(s.contains(20));
  EXPECT_FALSE(s.contains(21));
}

TEST(IntervalSet, MergedWithPoints) {
  auto s = IntervalSet::from_points({1, 2});
  auto t = s.merged_with_points({3, 10});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.intervals()[0], (Interval{1, 3}));
  EXPECT_EQ(t.intervals()[1], (Interval{10, 10}));
  // Original is immutable.
  EXPECT_EQ(s.size(), 1u);
}

TEST(IntervalSet, MergedWithSets) {
  auto a = IntervalSet::from_intervals({{1, 3}, {10, 12}});
  auto b = IntervalSet::from_intervals({{4, 9}});
  auto c = a.merged_with(b);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.intervals()[0], (Interval{1, 12}));
}

TEST(IntervalSet, ForEachGapWalksUncovered) {
  auto s = IntervalSet::from_intervals({{2, 3}, {6, 7}});
  std::vector<std::uint64_t> gaps;
  s.for_each_gap(1, 9, [&](std::uint64_t x) { gaps.push_back(x); });
  EXPECT_EQ(gaps, (std::vector<std::uint64_t>{1, 4, 5, 8, 9}));
}

TEST(IntervalSet, ForEachGapFullyCovered) {
  auto s = IntervalSet::from_intervals({{1, 100}});
  int count = 0;
  s.for_each_gap(1, 100, [&](std::uint64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(IntervalSet, ForEachGapEmptySet) {
  IntervalSet s;
  std::vector<std::uint64_t> gaps;
  s.for_each_gap(3, 6, [&](std::uint64_t x) { gaps.push_back(x); });
  EXPECT_EQ(gaps, (std::vector<std::uint64_t>{3, 4, 5, 6}));
}

TEST(IntervalSet, ForEachGapIntervalBeyondRange) {
  auto s = IntervalSet::from_intervals({{100, 200}});
  std::vector<std::uint64_t> gaps;
  s.for_each_gap(1, 3, [&](std::uint64_t x) { gaps.push_back(x); });
  EXPECT_EQ(gaps, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(IntervalSet, ToStringReadable) {
  auto s = IntervalSet::from_points({1, 2, 9});
  EXPECT_EQ(s.to_string(), "{[1,2], [9,9]}");
}

TEST(IntervalSet, HandlesUint64MaxBoundary) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  auto s = IntervalSet::from_points({kMax - 1, kMax});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(kMax));
  EXPECT_EQ(s.cardinality(), 2u);
}

// ---------------------------------------------------------------------------
// Property suite: IntervalSet must agree with a naive std::set<uint64_t>
// model under random merge workloads.
// ---------------------------------------------------------------------------

class IntervalSetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntervalSetPropertyTest, AgreesWithNaiveModel) {
  Xoshiro256 rng(GetParam());
  IntervalSet set;
  std::set<std::uint64_t> model;
  constexpr std::uint64_t kUniverse = 200;

  for (int round = 0; round < 40; ++round) {
    // Random batch of points, merged in.
    std::vector<std::uint64_t> points;
    std::uint64_t batch = rng.next_in(1, 10);
    for (std::uint64_t i = 0; i < batch; ++i) {
      points.push_back(rng.next_below(kUniverse));
    }
    for (auto p : points) model.insert(p);
    set = set.merged_with_points(points);

    ASSERT_TRUE(set.is_canonical()) << set.to_string();
    ASSERT_EQ(set.cardinality(), model.size());
    for (std::uint64_t x = 0; x < kUniverse; ++x) {
      ASSERT_EQ(set.contains(x), model.count(x) > 0)
          << "x=" << x << " " << set.to_string();
    }
    // Gap iteration agrees with the complement.
    std::vector<std::uint64_t> gaps;
    set.for_each_gap(0, kUniverse - 1,
                     [&](std::uint64_t x) { gaps.push_back(x); });
    std::vector<std::uint64_t> expected;
    for (std::uint64_t x = 0; x < kUniverse; ++x) {
      if (!model.count(x)) expected.push_back(x);
    }
    ASSERT_EQ(gaps, expected);
  }
}

TEST_P(IntervalSetPropertyTest, MergeOfSetsMatchesModel) {
  Xoshiro256 rng(GetParam() * 977 + 3);
  constexpr std::uint64_t kUniverse = 150;
  auto random_set = [&](std::set<std::uint64_t>& model) {
    std::vector<Interval> ivs;
    std::uint64_t count = rng.next_in(0, 6);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t lo = rng.next_below(kUniverse);
      std::uint64_t hi = std::min(kUniverse - 1, lo + rng.next_below(12));
      ivs.push_back({lo, hi});
      for (std::uint64_t x = lo; x <= hi; ++x) model.insert(x);
    }
    return IntervalSet::from_intervals(ivs);
  };
  std::set<std::uint64_t> model_a, model_b;
  auto a = random_set(model_a);
  auto b = random_set(model_b);
  auto c = a.merged_with(b);
  ASSERT_TRUE(c.is_canonical());
  for (std::uint64_t x = 0; x < kUniverse; ++x) {
    ASSERT_EQ(c.contains(x), model_a.count(x) + model_b.count(x) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace psnap::intervals
