// Figure-2-specific properties: O(1) join/leave, interval publication,
// coalescing, the bounded variant, and amortized getSet behaviour
// (Theorem 2's measurable content; the full sweep lives in bench T2).
#include "activeset/faicas_active_set.h"

#include <gtest/gtest.h>

#include <thread>

#include "exec/exec.h"

namespace psnap::activeset {
namespace {

std::uint64_t steps_now() { return exec::ctx().steps.total; }

TEST(FaiCas, JoinIsExactlyTwoSteps) {
  // Figure 2: join = one fetch&increment + one register write.
  FaiCasActiveSet as(4);
  exec::ScopedPid pid(0);
  for (int round = 0; round < 10; ++round) {
    std::uint64_t before = steps_now();
    as.join();
    EXPECT_EQ(steps_now() - before, 2u) << "round " << round;
    as.leave();
  }
}

TEST(FaiCas, LeaveIsExactlyOneStep) {
  // Figure 2: leave = one register write (I[l] <- 0).
  FaiCasActiveSet as(4);
  exec::ScopedPid pid(0);
  for (int round = 0; round < 10; ++round) {
    as.join();
    std::uint64_t before = steps_now();
    as.leave();
    EXPECT_EQ(steps_now() - before, 1u) << "round " << round;
  }
}

TEST(FaiCas, JoinLeaveStepsIndependentOfHistoryLength) {
  // The O(1) worst case bound holds no matter how much churn happened:
  // this is the paper's headline improvement over the collect-based
  // active set of [3].
  FaiCasActiveSet as(4);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 5000; ++i) {
    as.join();
    as.leave();
  }
  std::uint64_t before = steps_now();
  as.join();
  EXPECT_EQ(steps_now() - before, 2u);
  before = steps_now();
  as.leave();
  EXPECT_EQ(steps_now() - before, 1u);
}

TEST(FaiCas, SlotsAreNeverRecycled) {
  FaiCasActiveSet as(2);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 100; ++i) {
    as.join();
    as.leave();
  }
  EXPECT_EQ(as.slots_used(), 100u);  // one fresh slot per join
}

TEST(FaiCas, GetSetPublishesVacatedIntervals) {
  FaiCasActiveSet as(2);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 50; ++i) {
    as.join();
    as.leave();
  }
  EXPECT_EQ(as.skip_list_publications(), 0u);
  EXPECT_TRUE(as.get_set().empty());
  EXPECT_EQ(as.skip_list_publications(), 1u);
  // All 50 vacated slots are adjacent -> coalesced into one interval.
  EXPECT_EQ(as.published_intervals(), 1u);
}

TEST(FaiCas, SecondGetSetSkipsPublishedIntervals) {
  FaiCasActiveSet as(2);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 50; ++i) {
    as.join();
    as.leave();
  }
  (void)as.get_set();  // publishes the skip list
  std::uint64_t before = steps_now();
  (void)as.get_set();
  std::uint64_t cost = steps_now() - before;
  // Second getSet: load C, read H, and nothing else to scan.
  EXPECT_LE(cost, 4u);
}

TEST(FaiCas, GetSetWithoutPublicationRescansEverything) {
  FaiCasActiveSet::Options options;
  options.publish_skip_list = false;
  FaiCasActiveSet as(2, options);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 50; ++i) {
    as.join();
    as.leave();
  }
  (void)as.get_set();
  std::uint64_t before = steps_now();
  (void)as.get_set();
  std::uint64_t cost = steps_now() - before;
  // Must rescan all 50 vacated slots every time (the ABL-1 ablation's
  // point): 50 slot reads plus the C and H loads.
  EXPECT_GE(cost, 50u);
}

TEST(FaiCas, NoCoalesceKeepsFragmentedList) {
  // Two processes interleave joins; one leaves, the other stays, so the
  // vacated slots alternate and cannot form runs even with coalescing.
  // With coalescing disabled every vacated slot is its own interval.
  FaiCasActiveSet::Options options;
  options.coalesce = false;
  FaiCasActiveSet as(2, options);
  constexpr int kRounds = 20;
  for (int i = 0; i < kRounds; ++i) {
    {
      exec::ScopedPid pid(0);
      as.join();
    }
    {
      exec::ScopedPid pid(1);
      as.join();
    }
    {
      exec::ScopedPid pid(0);
      as.leave();
    }
    // pid 1 stays active, splitting the vacated runs.
    {
      exec::ScopedPid pid(1);
      as.leave();
    }
    {
      exec::ScopedPid pid(1);
      as.join();
    }
    {
      exec::ScopedPid pid(1);
      (void)as.get_set();
    }
    {
      exec::ScopedPid pid(1);
      as.leave();
    }
  }
  exec::ScopedPid pid(0);
  (void)as.get_set();
  EXPECT_GT(as.published_intervals(), std::size_t(kRounds));
}

TEST(FaiCas, CoalescedListStaysShort) {
  // Same churn as above but with coalescing: adjacent vacated slots merge,
  // so the list stays near-constant.  (Section 4.1: "coalesced into a
  // single interval in order to keep the length of the list as small as
  // possible".)
  FaiCasActiveSet as(2);
  for (int i = 0; i < 50; ++i) {
    {
      exec::ScopedPid pid(0);
      as.join();
      as.leave();
    }
    if (i % 10 == 0) {
      exec::ScopedPid pid(1);
      (void)as.get_set();
    }
  }
  exec::ScopedPid pid(1);
  (void)as.get_set();
  EXPECT_LE(as.published_intervals(), 2u);
}

TEST(FaiCas, BoundedVariantAcceptsWithinBudget) {
  FaiCasActiveSet::Options options;
  options.max_joins = 10;
  FaiCasActiveSet as(2, options);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 10; ++i) {
    as.join();
    as.leave();
  }
  EXPECT_EQ(as.slots_used(), 10u);
}

TEST(FaiCasDeathTest, BoundedVariantRejectsOverBudget) {
  FaiCasActiveSet::Options options;
  options.max_joins = 3;
  FaiCasActiveSet as(2, options);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 3; ++i) {
    as.join();
    as.leave();
  }
  EXPECT_DEATH(as.join(), "join budget");
}

TEST(FaiCasDeathTest, LeaveWithoutJoinAborts) {
  FaiCasActiveSet as(2);
  exec::ScopedPid pid(0);
  EXPECT_DEATH(as.leave(), "without a preceding join");
}

TEST(FaiCas, AmortizedGetSetBoundedUnderChurn) {
  // Theorem 2: amortized O(C) per getSet.  Here contention is constant
  // (two processes), so average getSet cost must stay bounded no matter
  // how long the execution runs: total steps across the run divided by
  // the number of getSets must not grow with the churn volume.
  FaiCasActiveSet as(2);
  double prev_avg = 0;
  for (int epoch = 1; epoch <= 3; ++epoch) {
    std::uint64_t total = 0;
    constexpr int kOps = 300;
    for (int i = 0; i < kOps; ++i) {
      {
        exec::ScopedPid pid(0);
        as.join();
        as.leave();
      }
      exec::ScopedPid pid(1);
      std::uint64_t before = steps_now();
      (void)as.get_set();
      total += steps_now() - before;
    }
    double avg = double(total) / kOps;
    if (epoch > 1) {
      // Average cost in later epochs must not blow up (slots keep
      // accumulating, the skip list keeps them out of the scan).
      EXPECT_LE(avg, prev_avg * 2 + 16);
    }
    prev_avg = avg;
  }
}

TEST(FaiCas, GetSetSeesActiveAcrossManySlots) {
  FaiCasActiveSet as(3);
  // Burn 70 slots with churn from pid 0.
  {
    exec::ScopedPid pid(0);
    for (int i = 0; i < 70; ++i) {
      as.join();
      as.leave();
    }
  }
  {
    exec::ScopedPid pid(2);
    as.join();
  }
  exec::ScopedPid pid(1);
  EXPECT_EQ(as.get_set(), (std::vector<std::uint32_t>{2}));
}

}  // namespace
}  // namespace psnap::activeset
