// Halting failures inside active set operations (paper Section 2's
// failure model applied to the Figure 2 algorithm).
//
// The interesting windows for Figure 2:
//   * crash between a join's fetch&increment and its id write: the slot
//     stays kEmpty forever -- getSet must keep skipping it WITHOUT ever
//     adding it to the published interval list (the invariant deviation
//     documented in faicas_active_set.h);
//   * crash right after the id write but before join "returns": the
//     process is neither active nor inactive; getSets may report it
//     either way, forever;
//   * crash inside getSet: no shared damage (its CAS either published a
//     correct list or nothing).
#include <gtest/gtest.h>

#include <memory>

#include "activeset/faicas_active_set.h"
#include "registry/registry.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "tests/support/registry_params.h"
#include "verify/activeset_checker.h"
#include "verify/recording.h"

namespace psnap::activeset {
namespace {

using runtime::SimScheduler;
using verify::check_active_set_validity;
using verify::History;
using verify::RecordingActiveSet;

// Crash sweeps run every registered sim-safe active set.
std::vector<const registry::ActiveSetInfo*> crash_impls() {
  return test::active_set_impls(
      [](const registry::ActiveSetInfo& info) { return info.sim_safe; });
}

class ActiveSetCrashTest
    : public ::testing::TestWithParam<const registry::ActiveSetInfo*> {};

// Sweep the churner's crash point across its whole operation sequence;
// the observer must always finish and its getSets must stay valid.
TEST_P(ActiveSetCrashTest, ChurnerCrashSweep) {
  for (std::uint64_t crash_step = 1; crash_step <= 10; ++crash_step) {
    auto as = test::make_active_set(*GetParam(), 2);
    History history;
    RecordingActiveSet recorded(*as, history);
    bool observer_finished = false;

    SimScheduler::Options options;
    options.crashes = {{0, crash_step}};
    SimScheduler sched(options);
    sched.add_process([&] {
      recorded.join();
      recorded.leave();
      recorded.join();
      recorded.leave();
    });
    sched.add_process([&] {
      std::vector<std::uint32_t> out;
      recorded.get_set(out);
      recorded.get_set(out);
      observer_finished = true;
    });
    sched.run();

    ASSERT_TRUE(observer_finished)
        << GetParam()->name << " crash at step " << crash_step;
    auto outcome = check_active_set_validity(history.operations());
    ASSERT_TRUE(outcome.ok) << GetParam()->name << " crash at step "
                            << crash_step << ": " << outcome.diagnosis
                            << "\n"
                            << history.to_string();
  }
}

// Crash inside getSet: the world keeps turning and later getSets by other
// processes remain valid.
TEST_P(ActiveSetCrashTest, ObserverCrashMidGetSet) {
  for (std::uint64_t crash_step = 1; crash_step <= 6; ++crash_step) {
    auto as = test::make_active_set(*GetParam(), 3);
    History history;
    RecordingActiveSet recorded(*as, history);
    bool second_observer_ok = false;

    SimScheduler::Options options;
    options.crashes = {{1, crash_step}};
    SimScheduler sched(options);
    sched.add_process([&] {
      recorded.join();
      recorded.leave();
    });
    sched.add_process([&] {
      std::vector<std::uint32_t> out;
      recorded.get_set(out);  // crashes somewhere inside
    });
    sched.add_process([&] {
      std::vector<std::uint32_t> out;
      recorded.get_set(out);
      second_observer_ok = true;
    });
    sched.run();

    ASSERT_TRUE(second_observer_ok);
    auto outcome = check_active_set_validity(history.operations());
    ASSERT_TRUE(outcome.ok) << outcome.diagnosis;
  }
}

INSTANTIATE_TEST_SUITE_P(Impls, ActiveSetCrashTest,
                         ::testing::ValuesIn(crash_impls()),
                         test::active_set_param_name);

// Figure-2 specific: a join crashed between its fetch&increment and its
// id write leaves a permanently-empty slot.  getSets must keep scanning
// past it (paying one read) but never publish it as vacated -- if they
// did, a later joiner reusing... no slot is ever reused, but the invariant
// "interval list only covers permanently-zero slots" would break the
// correctness argument.  Observable contract: after the crash, repeated
// getSets still return correct membership and the empty slot's index
// never enters the published list.
TEST(FaiCasCrash, MidJoinEmptySlotNeverPublished) {
  FaiCasActiveSet as(3);
  History history;
  RecordingActiveSet recorded(as, history);

  SimScheduler::Options options;
  // Process 0's join is fetch&increment (step 1) then id write (step 2):
  // crash exactly between them.
  options.crashes = {{0, 2}};
  SimScheduler sched(options);
  sched.add_process([&] { recorded.join(); });
  sched.add_process([&] {
    exec::ThreadCtx& ctx = exec::ctx();
    (void)ctx;
    recorded.join();
    recorded.leave();
  });
  sched.add_process([&] {
    std::vector<std::uint32_t> out;
    recorded.get_set(out);
    recorded.get_set(out);
    recorded.get_set(out);
  });
  sched.run();

  auto outcome = check_active_set_validity(history.operations());
  ASSERT_TRUE(outcome.ok) << outcome.diagnosis;

  // The crashed process claimed slot 1 or 2; whichever it is, it must not
  // be covered by the published skip list (it is empty, not vacated).
  // Process 1's vacated slot MAY be covered.  Since the crashed slot is
  // permanently empty, covering it would require a leave that never
  // happened.
  exec::ScopedPid pid(2);
  std::vector<std::uint32_t> members;
  as.get_set(members);  // publishes whatever is publishable
  // Both slots handed out; at most one (process 1's vacated one) may be
  // skip-listed.
  EXPECT_LE(as.published_intervals(), 1u);
  std::size_t covered = 0;
  if (as.published_intervals() == 1) covered = 1;
  EXPECT_LE(covered, 1u);
  // Membership correct: nobody is active.
  EXPECT_TRUE(members.empty());
}

}  // namespace
}  // namespace psnap::activeset
