// Active-set validity (Section 2.1's specification) under systematically
// explored schedules, for every implementation.  This is the property the
// snapshot algorithms' correctness proof consumes, checked directly from
// recorded histories rather than via linearization (the spec is weaker).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "registry/registry.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "tests/support/registry_params.h"
#include "verify/activeset_checker.h"
#include "verify/recording.h"

namespace psnap::activeset {
namespace {

using runtime::ExploreOptions;
using runtime::SimScheduler;
using verify::check_active_set_validity;
using verify::History;
using verify::RecordingActiveSet;

class ActiveSetValiditySimTest
    : public ::testing::TestWithParam<const registry::ActiveSetInfo*> {};

// Scenario A: two churners and one observer running getSets.
TEST_P(ActiveSetValiditySimTest, ChurnersAndObserverAllSchedules) {
  auto stats = runtime::explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        auto as = test::make_active_set(*GetParam(), 3);
        History history;
        RecordingActiveSet recorded(*as, history);

        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        sched.add_process([&] {
          recorded.join();
          recorded.leave();
        });
        sched.add_process([&] {
          recorded.join();
          recorded.leave();
        });
        sched.add_process([&] {
          std::vector<std::uint32_t> out;
          recorded.get_set(out);
          recorded.get_set(out);
        });
        auto result = sched.run();

        auto outcome = check_active_set_validity(history.operations());
        EXPECT_TRUE(outcome.ok) << outcome.diagnosis << "\nschedule size "
                                << script.size() << "\n"
                                << history.to_string();
        return result;
      },
      ExploreOptions{.max_schedules = 3000});
  // Either the space was fully explored or we used the whole budget.
  EXPECT_TRUE(stats.exhausted || stats.schedules_run >= 100u);
}

// Scenario B: rejoin churn -- a process leaves and immediately rejoins
// while the observer is mid-getSet (exercises the duplicate-slot path and
// the mid-join kEmpty handling in the Figure 2 algorithm).
TEST_P(ActiveSetValiditySimTest, RejoinDuringGetSetAllSchedules) {
  auto stats = runtime::explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        auto as = test::make_active_set(*GetParam(), 2);
        History history;
        RecordingActiveSet recorded(*as, history);

        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        sched.add_process([&] {
          recorded.join();
          recorded.leave();
          recorded.join();
          recorded.leave();
        });
        sched.add_process([&] {
          std::vector<std::uint32_t> out;
          recorded.get_set(out);
        });
        auto result = sched.run();

        auto outcome = check_active_set_validity(history.operations());
        EXPECT_TRUE(outcome.ok) << outcome.diagnosis << "\n"
                                << history.to_string();
        return result;
      },
      ExploreOptions{.max_schedules = 3000});
  EXPECT_TRUE(stats.exhausted || stats.schedules_run >= 50u);
}

// Scenario C: randomized larger runs.
TEST_P(ActiveSetValiditySimTest, RandomSchedulesLargerScenario) {
  runtime::explore_random(
      [&](std::uint64_t seed) {
        auto as = test::make_active_set(*GetParam(), 4);
        History history;
        RecordingActiveSet recorded(*as, history);

        SimScheduler::Options options;
        options.policy = SimScheduler::Policy::kRandom;
        options.seed = seed;
        SimScheduler sched(options);
        for (int p = 0; p < 3; ++p) {
          sched.add_process([&] {
            for (int round = 0; round < 3; ++round) {
              recorded.join();
              recorded.leave();
            }
          });
        }
        sched.add_process([&] {
          std::vector<std::uint32_t> out;
          for (int i = 0; i < 4; ++i) recorded.get_set(out);
        });
        sched.run();

        auto outcome = check_active_set_validity(history.operations());
        EXPECT_TRUE(outcome.ok)
            << outcome.diagnosis << "\nseed " << seed << "\n"
            << history.to_string();
      },
      /*runs=*/60);
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, ActiveSetValiditySimTest,
    ::testing::ValuesIn(test::active_set_impls(
        [](const registry::ActiveSetInfo& info) { return info.sim_safe; })),
    test::active_set_param_name);

// Native-thread churn with validity checking via the recorded history.
class ActiveSetValidityNativeTest
    : public ::testing::TestWithParam<const registry::ActiveSetInfo*> {};

TEST_P(ActiveSetValidityNativeTest, NativeChurnValidity) {
  auto as = test::make_active_set(*GetParam(), 6);
  History history;
  RecordingActiveSet recorded(*as, history);
  constexpr int kChurners = 4;
  constexpr int kRounds = 300;

  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kChurners; ++p) {
    threads.emplace_back([&recorded, p] {
      exec::ScopedPid pid(p);
      for (int i = 0; i < kRounds; ++i) {
        recorded.join();
        recorded.leave();
      }
    });
  }
  threads.emplace_back([&recorded] {
    exec::ScopedPid pid(5);
    std::vector<std::uint32_t> out;
    for (int i = 0; i < kRounds; ++i) recorded.get_set(out);
  });
  for (auto& t : threads) t.join();

  auto outcome = check_active_set_validity(history.operations());
  EXPECT_TRUE(outcome.ok) << outcome.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, ActiveSetValidityNativeTest,
                         ::testing::ValuesIn(test::active_set_impls()),
                         test::active_set_param_name);

}  // namespace
}  // namespace psnap::activeset
