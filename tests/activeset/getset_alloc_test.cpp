// Steady-state collects must not touch the heap.
//
// scan_alloc_test and update_alloc_test close the snapshot operation
// surface; this suite audits the remaining hot entry point, ActiveSet::
// get_set, for every registered implementation.  The contract under test:
//
//   * the caller's output vector is reserved once (at the population
//     bound) and its capacity is reused -- never shrunk -- by every later
//     collect;
//   * with a stable membership, repeated getSets perform ZERO heap
//     allocations, for every implementation (the mutex oracle included:
//     its std::set nodes churn on join/leave, not on reads);
//   * under membership churn the register and bitmap sets stay
//     allocation-free too (their per-pid state is written in place), and
//     Figure 2's only allocations are its interval-list publications plus
//     the amortized slot-segment installs -- the vacated-slot gathering
//     itself reuses a capacity-retaining scratch.
//
// Its own binary, like the other allocation suites: it owns the global
// operator new/delete.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "activeset/active_set.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/counting_allocator.h"
#include "tests/support/registry_params.h"

namespace psnap::activeset {
namespace {

using test::g_allocations;

constexpr std::uint32_t kN = 8;

std::uint64_t allocations_during_getsets(ActiveSet& as,
                                         std::vector<std::uint32_t>& out,
                                         int calls) {
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < calls; ++i) as.get_set(out);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

class GetSetAllocTest
    : public ::testing::TestWithParam<const registry::ActiveSetInfo*> {};

TEST_P(GetSetAllocTest, StableMembershipCollectsAreAllocationFree) {
  // Three members spread across the pid range, installed before the
  // measurement; the observer then collects repeatedly.
  auto as = test::make_active_set(*GetParam(), kN);
  for (std::uint32_t p : {1u, 3u, 6u}) {
    exec::ScopedPid pid(p);
    as->join();
  }
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 8; ++i) as->get_set(out);  // warm-up: capacity, EBR
  EXPECT_EQ(allocations_during_getsets(*as, out, 400), 0u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 3, 6}));
}

TEST_P(GetSetAllocTest, OutputCapacityIsReservedOnceAndNeverShrunk) {
  auto as = test::make_active_set(*GetParam(), kN);
  {
    exec::ScopedPid pid(5);
    as->join();
  }
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> out;
  as->get_set(out);
  std::size_t capacity = out.capacity();
  EXPECT_GE(capacity, out.size());
  for (int i = 0; i < 200; ++i) {
    as->get_set(out);
    EXPECT_EQ(out.capacity(), capacity) << "collect shrank or regrew the "
                                           "caller's capacity at call "
                                        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, GetSetAllocTest,
                         ::testing::ValuesIn(test::active_set_impls()),
                         test::active_set_param_name);

// Churn-phase allocation freedom for the flag-per-pid implementations:
// join/leave write per-pid state in place, so even collects interleaved
// with membership churn must stay off the heap.  (Figure 2 is exempt by
// design: churn produces vacated slots, and publishing their interval
// list allocates -- that is the algorithm, not a leak.  The mutex oracle
// allocates set nodes per join.)
class GetSetChurnAllocTest
    : public ::testing::TestWithParam<const registry::ActiveSetInfo*> {};

TEST_P(GetSetChurnAllocTest, ChurningCollectsAreAllocationFree) {
  auto as = test::make_active_set(*GetParam(), kN);
  std::vector<std::uint32_t> out;
  // Warm everything the churn loop touches: every pid's flag slot (the
  // first join may install a per-pid segment), the observer's capacity.
  for (std::uint32_t p : {1u, 2u, 3u}) {
    exec::ScopedPid pid(p);
    as->join();
    as->leave();
  }
  {
    exec::ScopedPid pid(0);
    for (int i = 0; i < 4; ++i) as->get_set(out);
  }
  // Built outside the measured loop: the comparison literal must not be
  // charged to the collects.
  const std::vector<std::uint32_t> expected{1, 2, 3};
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 200; ++round) {
    for (std::uint32_t p : {1u, 2u, 3u}) {
      exec::ScopedPid pid(p);
      as->join();
    }
    {
      exec::ScopedPid pid(0);
      as->get_set(out);
      EXPECT_EQ(out, expected);
    }
    for (std::uint32_t p : {1u, 2u, 3u}) {
      exec::ScopedPid pid(p);
      as->leave();
    }
    {
      exec::ScopedPid pid(0);
      as->get_set(out);
      EXPECT_TRUE(out.empty());
    }
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FlagPerPidImplementations, GetSetChurnAllocTest,
    ::testing::ValuesIn(test::active_set_impls(
        [](const registry::ActiveSetInfo& info) {
          return info.name.rfind("register", 0) == 0 ||
                 info.name.rfind("bitmap", 0) == 0;
        })),
    test::active_set_param_name);

// Figure 2 under churn: the vacated-slot gathering reuses its scratch, so
// the only steady-state allocations are the published interval lists
// (bounded by one successful publication per getSet) and the amortized
// slot-segment installs.
TEST(FaiCasChurnAlloc, ChurnAllocationsAreBoundedByPublications) {
  auto as = registry::make_active_set("faicas", kN);
  std::vector<std::uint32_t> out;
  // Warm: churn + collect until the scratch and capacity watermarks are
  // reached (all joins stay inside the first 1024-slot segment).
  for (int round = 0; round < 50; ++round) {
    exec::ScopedPid pid(1);
    as->join();
    as->leave();
    as->get_set(out);
  }
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    exec::ScopedPid pid(1);
    as->join();
    as->leave();
    as->get_set(out);  // gathers + publishes the vacated slot
  }
  std::uint64_t allocations =
      g_allocations.load(std::memory_order_relaxed) - before;
  // Each round publishes one interval list (a handful of allocations:
  // the IntervalSet, its vector, the merged points copy, EBR retire
  // bookkeeping at amortized thresholds).  The bound is deliberately
  // loose; the regression it catches is per-call scratch reallocation,
  // which would add O(rounds) on top.
  EXPECT_LE(allocations, 8u * kRounds);
  EXPECT_GE(allocations, 1u);  // publications really happened
}

}  // namespace
}  // namespace psnap::activeset
