// Behavioural tests shared by every active set implementation,
// parameterized over a factory so each algorithm faces the same contract.
#include "activeset/active_set.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/registry_params.h"

namespace psnap::activeset {
namespace {

class ActiveSetContractTest
    : public ::testing::TestWithParam<const registry::ActiveSetInfo*> {
 protected:
  std::unique_ptr<ActiveSet> make(std::uint32_t n) {
    return test::make_active_set(*GetParam(), n);
  }
};

TEST_P(ActiveSetContractTest, EmptyInitially) {
  auto as = make(4);
  exec::ScopedPid pid(0);
  EXPECT_TRUE(as->get_set().empty());
}

TEST_P(ActiveSetContractTest, JoinMakesVisible) {
  auto as = make(4);
  exec::ScopedPid pid(2);
  as->join();
  EXPECT_EQ(as->get_set(), (std::vector<std::uint32_t>{2}));
}

TEST_P(ActiveSetContractTest, LeaveRemoves) {
  auto as = make(4);
  exec::ScopedPid pid(1);
  as->join();
  as->leave();
  EXPECT_TRUE(as->get_set().empty());
}

TEST_P(ActiveSetContractTest, RejoinAfterLeave) {
  auto as = make(4);
  exec::ScopedPid pid(3);
  for (int round = 0; round < 5; ++round) {
    as->join();
    EXPECT_EQ(as->get_set(), (std::vector<std::uint32_t>{3}));
    as->leave();
    EXPECT_TRUE(as->get_set().empty());
  }
}

TEST_P(ActiveSetContractTest, MultipleMembersSortedNoDuplicates) {
  auto as = make(8);
  for (std::uint32_t p : {5u, 1u, 7u}) {
    exec::ScopedPid pid(p);
    as->join();
  }
  exec::ScopedPid pid(0);
  auto members = as->get_set();
  EXPECT_EQ(members, (std::vector<std::uint32_t>{1, 5, 7}));
}

TEST_P(ActiveSetContractTest, GetSetByNonMember) {
  auto as = make(4);
  {
    exec::ScopedPid pid(1);
    as->join();
  }
  exec::ScopedPid pid(0);  // observer never joined
  EXPECT_EQ(as->get_set(), (std::vector<std::uint32_t>{1}));
}

TEST_P(ActiveSetContractTest, OutputParameterIsCleared) {
  auto as = make(4);
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> out{99, 98};
  as->get_set(out);
  EXPECT_TRUE(out.empty());
  as->join();
  as->get_set(out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
}

TEST_P(ActiveSetContractTest, ConcurrentChurnNeverReturnsGarbage) {
  // Under churn, every returned pid must be a valid process id; the full
  // validity property is checked by the sim-based suite.  Churn volume is
  // iteration-bounded: the Figure 2 algorithm consumes one fresh slot per
  // join for the whole execution, by design (Section 6 leaves recycling
  // open), so time-based loops would exhaust the slot array.
  auto as = make(8);
  constexpr int kWorkers = 4;
  constexpr int kRoundsPerWorker = 100000;
  std::vector<std::thread> workers;
  for (std::uint32_t p = 0; p < kWorkers; ++p) {
    workers.emplace_back([&as, p] {
      exec::ScopedPid pid(p);
      for (int i = 0; i < kRoundsPerWorker; ++i) {
        as->join();
        as->leave();
      }
    });
  }
  {
    exec::ScopedPid pid(7);
    for (int i = 0; i < 2000; ++i) {
      for (std::uint32_t member : as->get_set()) {
        ASSERT_LT(member, 8u);
      }
    }
  }
  for (auto& w : workers) w.join();
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, ActiveSetContractTest,
                         ::testing::ValuesIn(test::active_set_impls()),
                         test::active_set_param_name);

}  // namespace
}  // namespace psnap::activeset
