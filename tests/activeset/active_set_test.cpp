// Behavioural tests shared by every active set implementation,
// parameterized over a factory so each algorithm faces the same contract.
#include "activeset/active_set.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>

#include "activeset/faicas_active_set.h"
#include "activeset/lock_active_set.h"
#include "activeset/register_active_set.h"
#include "exec/exec.h"

namespace psnap::activeset {
namespace {

using Factory =
    std::function<std::unique_ptr<ActiveSet>(std::uint32_t max_processes)>;

struct Impl {
  std::string label;
  Factory make;
};

class ActiveSetContractTest : public ::testing::TestWithParam<Impl> {};

TEST_P(ActiveSetContractTest, EmptyInitially) {
  auto as = GetParam().make(4);
  exec::ScopedPid pid(0);
  EXPECT_TRUE(as->get_set().empty());
}

TEST_P(ActiveSetContractTest, JoinMakesVisible) {
  auto as = GetParam().make(4);
  exec::ScopedPid pid(2);
  as->join();
  EXPECT_EQ(as->get_set(), (std::vector<std::uint32_t>{2}));
}

TEST_P(ActiveSetContractTest, LeaveRemoves) {
  auto as = GetParam().make(4);
  exec::ScopedPid pid(1);
  as->join();
  as->leave();
  EXPECT_TRUE(as->get_set().empty());
}

TEST_P(ActiveSetContractTest, RejoinAfterLeave) {
  auto as = GetParam().make(4);
  exec::ScopedPid pid(3);
  for (int round = 0; round < 5; ++round) {
    as->join();
    EXPECT_EQ(as->get_set(), (std::vector<std::uint32_t>{3}));
    as->leave();
    EXPECT_TRUE(as->get_set().empty());
  }
}

TEST_P(ActiveSetContractTest, MultipleMembersSortedNoDuplicates) {
  auto as = GetParam().make(8);
  for (std::uint32_t p : {5u, 1u, 7u}) {
    exec::ScopedPid pid(p);
    as->join();
  }
  exec::ScopedPid pid(0);
  auto members = as->get_set();
  EXPECT_EQ(members, (std::vector<std::uint32_t>{1, 5, 7}));
}

TEST_P(ActiveSetContractTest, GetSetByNonMember) {
  auto as = GetParam().make(4);
  {
    exec::ScopedPid pid(1);
    as->join();
  }
  exec::ScopedPid pid(0);  // observer never joined
  EXPECT_EQ(as->get_set(), (std::vector<std::uint32_t>{1}));
}

TEST_P(ActiveSetContractTest, OutputParameterIsCleared) {
  auto as = GetParam().make(4);
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> out{99, 98};
  as->get_set(out);
  EXPECT_TRUE(out.empty());
  as->join();
  as->get_set(out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
}

TEST_P(ActiveSetContractTest, ConcurrentChurnNeverReturnsGarbage) {
  // Under churn, every returned pid must be a valid process id; the full
  // validity property is checked by the sim-based suite.  Churn volume is
  // iteration-bounded: the Figure 2 algorithm consumes one fresh slot per
  // join for the whole execution, by design (Section 6 leaves recycling
  // open), so time-based loops would exhaust the slot array.
  auto as = GetParam().make(8);
  constexpr int kWorkers = 4;
  constexpr int kRoundsPerWorker = 100000;
  std::vector<std::thread> workers;
  for (std::uint32_t p = 0; p < kWorkers; ++p) {
    workers.emplace_back([&as, p] {
      exec::ScopedPid pid(p);
      for (int i = 0; i < kRoundsPerWorker; ++i) {
        as->join();
        as->leave();
      }
    });
  }
  {
    exec::ScopedPid pid(7);
    for (int i = 0; i < 2000; ++i) {
      for (std::uint32_t member : as->get_set()) {
        ASSERT_LT(member, 8u);
      }
    }
  }
  for (auto& w : workers) w.join();
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, ActiveSetContractTest,
    ::testing::Values(
        Impl{"register", [](std::uint32_t n) -> std::unique_ptr<ActiveSet> {
               return std::make_unique<RegisterActiveSet>(n);
             }},
        Impl{"faicas", [](std::uint32_t n) -> std::unique_ptr<ActiveSet> {
               return std::make_unique<FaiCasActiveSet>(n);
             }},
        Impl{"faicas_nocoalesce",
             [](std::uint32_t n) -> std::unique_ptr<ActiveSet> {
               FaiCasActiveSet::Options options;
               options.coalesce = false;
               return std::make_unique<FaiCasActiveSet>(n, options);
             }},
        Impl{"faicas_nopublish",
             [](std::uint32_t n) -> std::unique_ptr<ActiveSet> {
               FaiCasActiveSet::Options options;
               options.publish_skip_list = false;
               return std::make_unique<FaiCasActiveSet>(n, options);
             }},
        Impl{"lock", [](std::uint32_t n) -> std::unique_ptr<ActiveSet> {
               return std::make_unique<LockActiveSet>(n);
             }}),
    [](const ::testing::TestParamInfo<Impl>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace psnap::activeset
