// Population-adaptive walk bounds (exec/pid_bound.h): the PidBound
// contract, the step-count semantics of watermark-bounded collects in the
// Instrumented runtime, and the Figure 1 + bitmap pairing -- functionally,
// across add_components growth and pid churn, and under the deterministic
// scheduler.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "activeset/bitmap_active_set.h"
#include "activeset/register_active_set.h"
#include "exec/exec.h"
#include "exec/pid_bound.h"
#include "exec/thread_registry.h"
#include "registry/registry.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "verify/lin_checker.h"
#include "verify/recording.h"

namespace psnap::activeset {
namespace {

using exec::PidBound;
using exec::ThreadRegistry;

std::uint64_t steps_during(const std::function<void()>& op) {
  std::uint64_t before = exec::ctx().steps.total;
  op();
  return exec::ctx().steps.total - before;
}

TEST(PidBoundTest, FixedBoundClampsToCapacity) {
  EXPECT_EQ(PidBound::fixed(16).get(64), 16u);
  EXPECT_EQ(PidBound::fixed(128).get(64), 64u);
  EXPECT_FALSE(PidBound::fixed(16).is_adaptive());
}

TEST(PidBoundTest, AdaptiveBoundTracksTheRegistryWatermark) {
  ThreadRegistry registry(32);
  PidBound bound = PidBound::watermark_of(registry);
  EXPECT_TRUE(bound.is_adaptive());
  EXPECT_EQ(bound.get(32), 0u);
  std::uint32_t a = registry.acquire();
  std::uint32_t b = registry.acquire();
  EXPECT_EQ(bound.get(32), 2u);
  // Monotone through churn: releases do not shrink the bound, low-pid
  // reuse does not grow it.
  registry.release(a);
  registry.release(b);
  EXPECT_EQ(bound.get(32), 2u);
  std::uint32_t c = registry.acquire();
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(bound.get(32), 2u);
  // The object capacity still clamps.
  EXPECT_EQ(bound.get(1), 1u);
  registry.release(c);
}

TEST(PidBoundTest, DefaultBoundFollowsTheProcessWideRegistry) {
  std::uint32_t mark = ThreadRegistry::process_wide().high_watermark();
  PidBound bound;
  EXPECT_EQ(bound.get(ThreadRegistry::kMaxCapacity), mark);
  if (mark >= ThreadRegistry::kMaxCapacity) {
    GTEST_SKIP() << "watermark already at capacity in this process";
  }
  exec::ScopedPid pid(mark);  // manual pid: ScopedPid raises the watermark
  EXPECT_EQ(bound.get(ThreadRegistry::kMaxCapacity), mark + 1);
}

// The documented Instrumented-runtime semantics: each slot the bounded
// walk reads is exactly one step, the bound read is bookkeeping -- so
// getSet step counts equal the walked prefix, i.e. they track the live
// population instead of max_processes.
TEST(AdaptiveStepCountTest, RegisterGetSetStepsEqualTheWalkedPrefix) {
  ThreadRegistry registry(64);
  RegisterActiveSet adaptive(64, PidBound::watermark_of(registry));
  RegisterActiveSet full(64, PidBound::fixed(64));
  std::uint32_t a = registry.acquire();
  std::uint32_t b = registry.acquire();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);

  exec::ScopedPid pid(0);
  adaptive.join();
  full.join();
  std::vector<std::uint32_t> out;
  EXPECT_EQ(steps_during([&] { adaptive.get_set(out); }), 2u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(steps_during([&] { full.get_set(out); }), 64u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  registry.release(a);
  registry.release(b);
}

TEST(AdaptiveStepCountTest, BitmapGetSetReadsOneWordPer64Pids) {
  ThreadRegistry registry(128);
  BitmapActiveSet adaptive(128, PidBound::watermark_of(registry));
  BitmapActiveSet full(128, PidBound::fixed(128));
  std::uint32_t a = registry.acquire();

  exec::ScopedPid pid(0);
  // join and leave are one RMW step each.
  EXPECT_EQ(steps_during([&] { adaptive.join(); }), 1u);
  full.join();
  std::vector<std::uint32_t> out;
  // Watermark 1 -> one word read; the fixed bound walks ceil(128/64) = 2.
  EXPECT_EQ(steps_during([&] { adaptive.get_set(out); }), 1u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(steps_during([&] { full.get_set(out); }), 2u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(steps_during([&] { adaptive.leave(); }), 1u);
  registry.release(a);
}

TEST(AdaptiveStepCountTest, BitmapMembersSpanningWordsAreCollectedSorted) {
  BitmapActiveSet as(128, PidBound::fixed(128));
  for (std::uint32_t p : {127u, 64u, 63u, 0u, 65u}) {
    exec::ScopedPid pid(p);
    as.join();
  }
  {
    exec::ScopedPid pid(1);
    EXPECT_EQ(as.get_set(),
              (std::vector<std::uint32_t>{0, 63, 64, 65, 127}));
  }
  // Pop one member per word and re-collect.
  for (std::uint32_t p : {64u, 127u}) {
    exec::ScopedPid pop(p);
    as.leave();
  }
  exec::ScopedPid pid(1);
  EXPECT_EQ(as.get_set(), (std::vector<std::uint32_t>{0, 63, 65}));
}

// Figure 1 running on the bitmap active set, constructed through the
// nested registry spec: functional across growth and pid churn.
TEST(Fig1BitmapPairingTest, ScanUpdateGrowthAndChurn) {
  auto snap = registry::make_snapshot("fig1_register:as=bitmap", 8, 4);
  {
    exec::ScopedPid pid(0);
    for (std::uint32_t i = 0; i < 8; ++i) snap->update(i, 100 + i);
    EXPECT_EQ(snap->scan({1, 6}), (std::vector<std::uint64_t>{101, 106}));
  }
  // Growth: new components visible to scans straddling old and new.
  {
    exec::ScopedPid pid(1);
    std::uint32_t first = snap->add_components(4);
    EXPECT_EQ(first, 8u);
    snap->update(10, 42);
    EXPECT_EQ(snap->scan({3, 10}), (std::vector<std::uint64_t>{103, 42}));
  }
  // Pid churn: fresh thread lifetimes (simulated by scoped pids) keep
  // operating; the adaptive walk keeps covering whoever announces.
  for (int life = 0; life < 20; ++life) {
    exec::ScopedPid pid(life % 4);
    snap->update(life % 12, 1000 + life);
    EXPECT_EQ(snap->scan({static_cast<std::uint32_t>(life % 12)}),
              (std::vector<std::uint64_t>{1000u + life}));
  }
}

// The same pairing under the deterministic scheduler: updater-vs-scanner
// linearizability across every DFS schedule, the helping path included
// (the update's getSet walks the bitmap).
TEST(Fig1BitmapPairingTest, UpdaterVsScannerDfsLinearizable) {
  constexpr std::uint32_t kM = 2;
  auto stats = runtime::explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        auto snap = registry::make_snapshot("fig1_register:as=bitmap", kM, 2);
        verify::History history;
        verify::RecordingSnapshot recorded(*snap, history);

        runtime::SimScheduler::Options options;
        options.script = script;
        runtime::SimScheduler sched(options);
        sched.add_process([&] {
          recorded.update(0, 1);
          recorded.update(1, 2);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
        });
        auto result = sched.run();

        verify::LinCheckOptions check;
        check.num_components = kM;
        auto outcome =
            verify::check_snapshot_linearizable(history.operations(), check);
        EXPECT_EQ(outcome.result, verify::LinResult::kLinearizable)
            << outcome.diagnosis << "\n"
            << history.to_string();
        return result;
      },
      runtime::ExploreOptions{.max_schedules = 800});
  EXPECT_TRUE(stats.exhausted || stats.schedules_run >= 100u);
}

}  // namespace
}  // namespace psnap::activeset
