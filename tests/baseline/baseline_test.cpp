// Baseline-specific behaviours: starvation caps, seqlock writer mutual
// exclusion, full-snapshot helping.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baseline/double_collect.h"
#include "baseline/full_snapshot.h"
#include "baseline/lock_snapshot.h"
#include "baseline/seqlock_snapshot.h"
#include "core/op_stats.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "exec/exec.h"

namespace psnap::baseline {
namespace {

TEST(DoubleCollect, UncontendedScanIsTwoCollects) {
  DoubleCollectSnapshot snap(8, 2);
  exec::ScopedPid pid(0);
  std::vector<std::uint64_t> out;
  snap.scan(std::vector<std::uint32_t>{0, 1}, out);
  EXPECT_EQ(core::tls_op_stats().collects, 2u);
}

TEST(DoubleCollect, StarvationCapThrows) {
  // With a cap of 1 collect, any scan must starve (two identical collects
  // are impossible within one).
  DoubleCollectSnapshot snap(4, 2, /*max_collects_per_scan=*/1);
  exec::ScopedPid pid(0);
  std::vector<std::uint64_t> out;
  EXPECT_THROW(snap.scan(std::vector<std::uint32_t>{0}, out),
               StarvationError);
}

TEST(DoubleCollect, StarvationUnderContendedSchedules) {
  // A scanner with a minimal collect cap racing a fast updater must starve
  // at least occasionally -- this is the non-wait-freedom the paper's
  // helping mechanism eliminates (ABL-2 measures the rate).  Cap 2 means
  // "succeed only if the very first double collect is clean".  Driven
  // under the deterministic scheduler biased toward the updater (instead
  // of native threads) so the adversarial interleaving is produced on any
  // host, including single-core CI runners where OS threads rarely
  // preempt mid-scan.
  std::atomic<std::uint64_t> starved{0};
  runtime::explore_random(
      [&](std::uint64_t seed) {
        DoubleCollectSnapshot snap(2, 2, /*max_collects_per_scan=*/2);
        runtime::SimScheduler::Options options;
        options.policy = runtime::SimScheduler::Policy::kRandomBiased;
        options.bias_pid = 0;
        options.bias_probability = 0.85;
        options.seed = seed;
        runtime::SimScheduler sched(options);
        sched.add_process([&] {
          for (std::uint64_t k = 1; k <= 10; ++k) snap.update(0, k);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          try {
            snap.scan(std::vector<std::uint32_t>{0, 1}, out);
          } catch (const StarvationError&) {
            starved.fetch_add(1);
          }
        });
        sched.run();
      },
      /*runs=*/100);
  EXPECT_GT(starved.load(), 0u);
}

TEST(DoubleCollect, NoCapNeverThrows) {
  DoubleCollectSnapshot snap(2, 2);  // cap 0 = unlimited
  exec::ScopedPid pid(0);
  std::vector<std::uint64_t> out;
  for (int i = 0; i < 100; ++i) {
    snap.update(0, std::uint64_t(i));
    snap.scan(std::vector<std::uint32_t>{0, 1}, out);
    EXPECT_EQ(out[0], std::uint64_t(i));
  }
}

TEST(Seqlock, WritersAreMutuallyExclusive) {
  SeqlockSnapshot snap(4);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kWritesEach = 20000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&snap] {
      for (std::uint64_t k = 0; k < kWritesEach; ++k) {
        snap.update(0, k);
      }
    });
  }
  for (auto& t : writers) t.join();
  // Version counter: exactly two increments per write.
  std::vector<std::uint64_t> out;
  snap.scan(std::vector<std::uint32_t>{0}, out);  // sanity: readable after
  SUCCEED();
}

// Runs a capped seqlock scan of `scan_indices` against an updater
// hammering component 0 under updater-biased deterministic schedules;
// returns how many scans starved.  Shared by the two starvation tests so
// both exercise the identical adversary.
std::uint64_t seqlock_starvation_count(
    const std::vector<std::uint32_t>& scan_indices) {
  std::atomic<std::uint64_t> starved{0};
  runtime::explore_random(
      [&](std::uint64_t seed) {
        SeqlockSnapshot snap(2, /*max_attempts_per_scan=*/2);
        runtime::SimScheduler::Options options;
        options.policy = runtime::SimScheduler::Policy::kRandomBiased;
        options.bias_pid = 0;
        options.bias_probability = 0.85;
        options.seed = seed;
        runtime::SimScheduler sched(options);
        sched.add_process([&] {
          for (std::uint64_t k = 1; k <= 10; ++k) snap.update(0, k);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          try {
            snap.scan(scan_indices, out);
          } catch (const StarvationError&) {
            starved.fetch_add(1);
          }
        });
        sched.run();
      },
      /*runs=*/100);
  return starved.load();
}

TEST(Seqlock, ScanRetryCapThrows) {
  EXPECT_GT(seqlock_starvation_count({0, 1}), 0u);
}

TEST(Seqlock, GlobalConflictDomainStarvesUnrelatedScans) {
  // Contrast with per-component conflicts: updates to component 0 starve a
  // scan of component 1 under seqlock, because the version counter is one
  // global conflict domain.  (The CMP bench quantifies this.)
  EXPECT_GT(seqlock_starvation_count({1}), 0u);
}

TEST(FullSnapshot, HelpingBorrowsUnderAdversarialSchedule) {
  // The full snapshot uses the same moved-twice helping rule as Figure 1;
  // under a scheduler biased toward the updater, the scanner's collects
  // are separated by whole updates and the borrow path must fire.
  std::atomic<std::uint64_t> borrowed{0};
  runtime::explore_random(
      [&](std::uint64_t seed) {
        FullSnapshot snap(2, 2);
        runtime::SimScheduler::Options options;
        options.policy = runtime::SimScheduler::Policy::kRandomBiased;
        options.bias_pid = 0;
        options.bias_probability = 0.85;
        options.seed = seed;
        runtime::SimScheduler sched(options);
        sched.add_process([&] {
          for (std::uint64_t k = 1; k <= 10; ++k) snap.update(0, k);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          snap.scan(std::vector<std::uint32_t>{0, 1}, out);
          if (core::tls_op_stats().borrowed) borrowed.fetch_add(1);
        });
        sched.run();
      },
      /*runs=*/100);
  EXPECT_GT(borrowed.load(), 0u);
}

TEST(Lock, SequentiallyCorrectUnderConcurrency) {
  LockSnapshot snap(4);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&snap, t] {
      std::vector<std::uint64_t> out;
      for (std::uint64_t k = 0; k < 5000; ++k) {
        snap.update(static_cast<std::uint32_t>(t), k);
        snap.scan(std::vector<std::uint32_t>{std::uint32_t(t)}, out);
        ASSERT_EQ(out[0], k);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace psnap::baseline
