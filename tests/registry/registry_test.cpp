// The implementation registry: catalogue integrity, spec parsing, and the
// sequential scan contract driven uniformly through registry construction.
#include "registry/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>

#include "activeset/faicas_active_set.h"
#include "baseline/double_collect.h"
#include "core/cas_psnap.h"
#include "core/partial_snapshot.h"
#include "core/register_psnap.h"
#include "exec/exec.h"
#include "primitives/value_plane.h"
#include "tests/support/registry_params.h"

namespace psnap::registry {
namespace {

// ---------------------------------------------------------------------------
// Catalogue integrity.
// ---------------------------------------------------------------------------

TEST(SnapshotRegistry, CataloguesTheExpectedBuiltins) {
  auto& registry = SnapshotRegistry::instance();
  for (const char* name :
       {"fig1_register", "fig3_cas", "fig3_write_ablation", "full_snapshot",
        "double_collect", "lock", "seqlock", "fig1_register_blob",
        "fig3_cas_blob", "full_snapshot_blob", "fig3_cas_versioned",
        "full_snapshot_versioned", "seqlock_versioned", "fig3_cas_batch",
        "fig3_cas_versioned_batch", "full_snapshot_versioned_batch"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_GE(registry.all().size(), 16u);
  EXPECT_EQ(registry.find("no_such_impl"), nullptr);
}

TEST(ActiveSetRegistry, CataloguesTheExpectedBuiltins) {
  auto& registry = ActiveSetRegistry::instance();
  for (const char* name :
       {"register", "register_fast", "bitmap", "bitmap_fast", "faicas",
        "faicas_fast", "faicas_nocoalesce", "faicas_nopublish", "lock"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_GE(registry.all().size(), 9u);
}

TEST(ActiveSetRegistry, AdaptiveOptionReachesEveryBoundedImplementation) {
  // adaptive=false pins the full-range walk; both parse on the flag-slot
  // implementations and the Figure 2 spec alike.
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"register:adaptive=false", "bitmap:adaptive=false",
        "faicas:adaptive=false", "register:adaptive=true", "bitmap"}) {
    auto as = make_active_set(spec, 4);
    as->join();
    EXPECT_EQ(as->get_set(), (std::vector<std::uint32_t>{0})) << spec;
    as->leave();
  }
  auto snap = make_snapshot("fig1_register:as=bitmap,adaptive=false", 4, 2);
  snap->update(2, 7);
  EXPECT_EQ(snap->scan({2}), (std::vector<std::uint64_t>{7}));
}

TEST(ActiveSetRegistry, AdaptiveOptionPropagatesIntoInjectedActiveSets) {
  // The outer adaptive= choice must reach an as=-injected active set: its
  // collect is the walk the option A/Bs.  Observable through steps: with
  // adaptive=false the register collect walks all n=64 slots; the default
  // adaptive bound walks only the (much smaller) pid watermark.
  exec::ScopedPid pid(0);
  auto count_getset_steps = [](const char* spec) {
    auto snap = make_snapshot(spec, 4, 64);
    auto* fig1 = dynamic_cast<core::RegisterPartialSnapshot*>(snap.get());
    EXPECT_NE(fig1, nullptr) << spec;
    std::vector<std::uint32_t> out;
    std::uint64_t before = exec::ctx().steps.total;
    fig1->active_set().get_set(out);
    return exec::ctx().steps.total - before;
  };
  EXPECT_EQ(count_getset_steps("fig1_register:as=register,adaptive=false"),
            64u);
  EXPECT_LT(count_getset_steps("fig1_register:as=register,adaptive=true"),
            64u);
  // An explicit nested choice wins over the outer one.
  EXPECT_EQ(count_getset_steps(
                "fig1_register:as=register;adaptive=false,adaptive=true"),
            64u);
}

TEST(SnapshotRegistry, NamesAreUniqueAndIdentifierSafe) {
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    EXPECT_FALSE(info->name.empty());
    for (char c : info->name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << info->name << " is not a valid gtest parameter name";
    }
    EXPECT_FALSE(info->description.empty()) << info->name;
  }
}

// ---------------------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------------------

TEST(RegistryOptions, ParsesTypedValuesAndFlagShorthand) {
  Options options = Options::parse("cap=3,verbose,name=zipf");
  EXPECT_EQ(options.get_uint("cap", 0), 3u);
  EXPECT_TRUE(options.get_bool("verbose", false));
  EXPECT_EQ(options.get_string("name", ""), "zipf");
  EXPECT_EQ(options.get_uint("absent", 17), 17u);
  EXPECT_NO_THROW(options.check_consumed());
}

TEST(RegistryOptions, RejectsMalformedSpecs) {
  EXPECT_THROW(Options::parse("=3"), std::invalid_argument);
  EXPECT_THROW(Options::parse("a=1,,b=2"), std::invalid_argument);
  // Duplicate keys would be silently first-wins; fail instead.
  EXPECT_THROW(Options::parse("cas=true,cas=false"), std::invalid_argument);
  Options bad_bool = Options::parse("cas=maybe");
  EXPECT_THROW(bad_bool.get_bool("cas", true), std::invalid_argument);
  Options bad_uint = Options::parse("cap=12x");
  EXPECT_THROW(bad_uint.get_uint("cap", 0), std::invalid_argument);
  // stoull would happily wrap a negative or skip leading junk; a typo'd
  // spec must fail loudly instead of silently disabling a bound.
  Options negative = Options::parse("cap=-1");
  EXPECT_THROW(negative.get_uint("cap", 0), std::invalid_argument);
  Options padded = Options::parse("cap= 3");
  EXPECT_THROW(padded.get_uint("cap", 0), std::invalid_argument);
}

TEST(SnapshotRegistry, UnknownNameAndUnknownOptionFailLoudly) {
  EXPECT_THROW(make_snapshot("no_such_impl", 4, 2), std::invalid_argument);
  EXPECT_THROW(make_snapshot("fig3_cas:typo_option=1", 4, 2),
               std::invalid_argument);
  EXPECT_THROW(make_active_set("faicas:typo=1", 2), std::invalid_argument);
}

TEST(SnapshotRegistry, UnknownNameSuggestsTheClosestImplementation) {
  // A one-character typo earns a "did you mean" plus the catalogue.
  try {
    make_snapshot("fig3_ca", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("did you mean 'fig3_cas'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("fig1_register"), std::string::npos)
        << "catalogue missing from: " << message;
  }
  try {
    make_active_set("faicsa", 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'faicas'"),
              std::string::npos)
        << e.what();
  }
  // Nothing plausibly close: no suggestion, catalogue still printed.
  try {
    make_snapshot("zzzzzzzz", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_EQ(message.find("did you mean"), std::string::npos) << message;
    EXPECT_NE(message.find("known implementations"), std::string::npos)
        << message;
  }
  // Prefix abbreviations resolve to the full name.
  EXPECT_EQ(closest_snapshot_name("fig3"), "fig3_cas");
}

TEST(SnapshotRegistry, UniversalSpecOptionsOverrideShapeArguments) {
  exec::ScopedPid pid(0);
  auto snap = make_snapshot("fig3_cas:m0=8,max_threads=3", 4, 2);
  EXPECT_EQ(snap->num_components(), 8u);
  snap->update(7, 42);
  EXPECT_EQ(snap->scan({7}), (std::vector<std::uint64_t>{42}));
  auto as = make_active_set("register:max_threads=5", 2);
  EXPECT_EQ(as->max_processes(), 5u);
}

TEST(SnapshotRegistry, EveryImplementationGrowsThroughAddComponents) {
  exec::ScopedPid pid(0);
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    auto snap = test::make_snapshot(*info, 4, 2);
    snap->update(3, 33);
    std::uint32_t first = snap->add_components(3);
    EXPECT_EQ(first, 4u) << info->name;
    EXPECT_EQ(snap->num_components(), 7u) << info->name;
    // Old components keep their values; new ones start at the initial
    // value and accept updates.
    EXPECT_EQ(snap->scan({3, 4, 6}), (std::vector<std::uint64_t>{33, 0, 0}))
        << info->name;
    snap->update(6, 66);
    EXPECT_EQ(snap->scan({6, 0}), (std::vector<std::uint64_t>{66, 0}))
        << info->name;
  }
}

TEST(SnapshotRegistry, SpecOptionsReachTheImplementation) {
  exec::ScopedPid pid(0);
  {
    auto snap = make_snapshot("fig3_cas:cas=false", 4, 2);
    auto* cas = dynamic_cast<core::CasPartialSnapshot*>(snap.get());
    ASSERT_NE(cas, nullptr);
    EXPECT_EQ(snap->name(), "fig3-write(ablation)");
  }
  {
    auto snap = make_snapshot("fig1_register:initial=7", 4, 2);
    EXPECT_EQ(snap->scan({0, 3}), (std::vector<std::uint64_t>{7, 7}));
  }
  {
    // Figure 1 paired with the Figure 2 active set via a nested spec.
    auto snap = make_snapshot("fig1_register:as=faicas", 4, 2);
    snap->update(1, 5);
    EXPECT_EQ(snap->scan({1}), (std::vector<std::uint64_t>{5}));
  }
  {
    // Nested active-set options use ';' so they survive the outer comma
    // split; combined with a sibling option to prove both are consumed.
    auto snap = make_snapshot(
        "fig1_register:as=faicas;coalesce=false;publish=false,initial=2", 4,
        2);
    EXPECT_EQ(snap->scan({0, 2}), (std::vector<std::uint64_t>{2, 2}));
    snap->update(2, 9);
    EXPECT_EQ(snap->scan({2}), (std::vector<std::uint64_t>{9}));
  }
  {
    auto as = make_active_set("faicas:coalesce=false", 2);
    EXPECT_NE(dynamic_cast<activeset::FaiCasActiveSet*>(as.get()), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Value planes.
// ---------------------------------------------------------------------------

TEST(SnapshotRegistry, ValuePlaneOptionSelectsThePlaneOnEveryBuiltin) {
  exec::ScopedPid pid(0);
  struct Payload {
    std::uint32_t id;
    double reading;
  };
  for (const char* spec :
       {"fig1_register:value=blob", "fig3_cas:value=blob",
        "full_snapshot:value=blob", "double_collect:value=blob",
        "lock:value=blob", "seqlock:value=blob",
        "fig1_register_fast:value=blob", "fig3_cas_fast:value=blob",
        "fig3_write_ablation:value=blob", "fig1_register_blob",
        "fig3_cas_blob", "full_snapshot_blob"}) {
    auto snap = make_snapshot(spec, 4, 2);
    EXPECT_EQ(snap->value_plane(), "blob") << spec;
    // The logical-u64 interface round-trips through 8-byte payloads, so
    // u64-driven harnesses cover this plane unchanged.
    snap->update(1, 77);
    EXPECT_EQ(snap->scan({1, 0}), (std::vector<std::uint64_t>{77, 0}))
        << spec;
    // Arbitrary struct payloads round-trip through the blob interface.
    Payload in{9, 2.5};
    snap->update_blob(2, value::as_bytes_of(in));
    std::vector<value::Blob> blobs;
    const std::vector<std::uint32_t> idx{2, 1};
    snap->scan_blobs(idx, blobs);
    ASSERT_EQ(blobs.size(), 2u) << spec;
    Payload out{};
    ASSERT_TRUE(value::from_bytes(blobs[0], out)) << spec;
    EXPECT_EQ(out.id, 9u) << spec;
    EXPECT_EQ(out.reading, 2.5) << spec;
    // The u64 update at index 1 reads back as its 8-byte encoding.
    EXPECT_EQ(value::IndirectBlob::decode(blobs[1]), 77u) << spec;
  }
}

TEST(SnapshotRegistry, ValuePlaneOptionSelectsTheVersionedPlane) {
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"fig3_cas:value=versioned", "fig3_cas_fast:value=versioned",
        "full_snapshot:value=versioned", "seqlock:value=versioned",
        "fig3_cas_versioned", "full_snapshot_versioned",
        "seqlock_versioned"}) {
    auto snap = make_snapshot(spec, 4, 2);
    EXPECT_EQ(snap->value_plane(), "versioned") << spec;
    // The u64 interface routes through the version chains, so every
    // u64-driven harness covers this plane unchanged.
    snap->update(1, 77);
    EXPECT_EQ(snap->scan({1, 0}), (std::vector<std::uint64_t>{77, 0}))
        << spec;
    // The plane-specific API returns the scan's camera epoch.
    std::vector<std::uint64_t> out;
    const std::vector<std::uint32_t> idx{1, 3};
    std::uint64_t e1 = snap->scan_versioned(idx, out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{77, 0})) << spec;
    std::uint64_t e2 = snap->scan_versioned(idx, out);
    EXPECT_GT(e2, e1) << spec;
    // Versioned stores words, not byte payloads.
    EXPECT_THROW(snap->update_blob(0, {}), std::logic_error) << spec;
  }
}

TEST(SnapshotRegistry, NonVersionedPlanesRejectScanVersioned) {
  exec::ScopedPid pid(0);
  for (const char* spec : {"fig3_cas", "fig3_cas:value=blob", "seqlock"}) {
    auto snap = make_snapshot(spec, 4, 2);
    std::vector<std::uint64_t> out;
    const std::vector<std::uint32_t> idx{0};
    EXPECT_THROW(snap->scan_versioned(idx, out), std::logic_error) << spec;
  }
}

TEST(SnapshotRegistry, U64PlaneRejectsBlobOperations) {
  exec::ScopedPid pid(0);
  auto snap = make_snapshot("fig3_cas", 4, 2);
  EXPECT_EQ(snap->value_plane(), "u64");
  EXPECT_THROW(snap->update_blob(0, {}), std::logic_error);
  std::vector<value::Blob> blobs;
  const std::vector<std::uint32_t> idx{0};
  EXPECT_THROW(snap->scan_blobs(idx, blobs), std::logic_error);
}

TEST(SnapshotRegistry, UnsupportedValuePlaneFailsWithTheFullCatalogue) {
  // A plane the entry does not list fails loudly, naming the supported
  // set and printing the catalogue (which itself lists every entry's
  // {value=...} options).
  try {
    make_snapshot("fig3_cas:value=qword", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("does not support value=qword"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("supported: u64,blob,versioned"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("known implementations"), std::string::npos)
        << message;
    EXPECT_NE(message.find("{value=u64,blob}"), std::string::npos)
        << message;
    EXPECT_NE(message.find("{value=u64,blob,versioned}"), std::string::npos)
        << message;
  }
  // The canned blob twins accept ONLY the blob plane.
  try {
    make_snapshot("fig1_register_blob:value=u64", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("does not support value=u64"), std::string::npos)
        << message;
    EXPECT_NE(message.find("supported: blob"), std::string::npos) << message;
  }
  // Entries that never grew a version chain reject the versioned plane...
  try {
    make_snapshot("fig1_register:value=versioned", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("does not support value=versioned"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("supported: u64,blob"), std::string::npos)
        << message;
  }
  // ...and the canned versioned twins accept ONLY the versioned plane.
  try {
    make_snapshot("fig3_cas_versioned:value=u64", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("does not support value=u64"), std::string::npos)
        << message;
    EXPECT_NE(message.find("supported: versioned"), std::string::npos)
        << message;
  }
}

TEST(SnapshotRegistry, CatalogueListsPerImplementationValuePlanes) {
  std::string catalogue = snapshot_catalogue();
  // Every entry advertises its plane set...
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    EXPECT_NE(catalogue.find(info->name), std::string::npos) << info->name;
    EXPECT_NE(catalogue.find("{value=" + info->values + "}"),
              std::string::npos)
        << info->name << " planes missing from catalogue";
  }
  // ...and the trailer documents the universal option.
  EXPECT_NE(catalogue.find("value=<plane>"), std::string::npos);
}

TEST(SnapshotRegistry, DefaultPlaneIsTheFirstListed) {
  EXPECT_TRUE(value_plane_supported("u64,blob", "u64"));
  EXPECT_TRUE(value_plane_supported("u64,blob", "blob"));
  EXPECT_FALSE(value_plane_supported("u64,blob", "qword"));
  EXPECT_FALSE(value_plane_supported("u64", "blob"));
  EXPECT_TRUE(value_plane_supported("u64,blob,versioned", "versioned"));
  EXPECT_FALSE(value_plane_supported("u64,blob", "versioned"));
  EXPECT_EQ(default_value_plane("versioned"), "versioned");
  EXPECT_EQ(default_value_plane("u64,blob"), "u64");
  EXPECT_EQ(default_value_plane("blob"), "blob");
  // Capability field vs instance, for every entry.
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    auto snap = test::make_snapshot(*info, 4, 2);
    EXPECT_EQ(snap->value_plane(), default_value_plane(info->values))
        << info->name;
  }
}

// ---------------------------------------------------------------------------
// Reclamation planes (reclaim= / shards=).
// ---------------------------------------------------------------------------

TEST(SnapshotRegistry, ReclaimPlaneOptionSelectsThePlane) {
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"fig3_cas:reclaim=hp", "fig3_cas_fast:reclaim=hp", "fig3_cas_hp",
        "fig3_cas:value=blob,reclaim=hp",
        "fig3_cas:value=versioned,reclaim=hp", "fig3_cas_versioned_hp",
        "fig3_cas_versioned_batch:reclaim=hp"}) {
    auto snap = make_snapshot(spec, 4, 2);
    EXPECT_EQ(snap->reclaim_plane(), "hp") << spec;
    EXPECT_EQ(snap->reclaim_shards(), 1u) << spec;
    snap->update(1, 77);
    EXPECT_EQ(snap->scan({1, 0}), (std::vector<std::uint64_t>{77, 0}))
        << spec;
  }
  // The default plane is EBR, one shard; shards=k shards it.
  auto def = make_snapshot("fig3_cas", 4, 2);
  EXPECT_EQ(def->reclaim_plane(), "ebr");
  EXPECT_EQ(def->reclaim_shards(), 1u);
  auto sharded = make_snapshot("fig3_cas:shards=4", 4, 2);
  EXPECT_EQ(sharded->reclaim_plane(), "ebr");
  EXPECT_EQ(sharded->reclaim_shards(), 4u);
  sharded->update(1, 5);
  EXPECT_EQ(sharded->scan({1, 3}), (std::vector<std::uint64_t>{5, 0}));
}

TEST(SnapshotRegistry, UnsupportedReclaimPlaneFailsWithTheFullCatalogue) {
  // reclaim=hp on an entry without a hazard-pointer path fails centrally,
  // naming the supported set and printing the catalogue (whose lines list
  // every entry's {reclaim=...} planes).
  try {
    make_snapshot("fig1_register:reclaim=hp", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("does not support reclaim=hp"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("supported: ebr"), std::string::npos) << message;
    EXPECT_NE(message.find("known implementations"), std::string::npos)
        << message;
    EXPECT_NE(message.find("{reclaim=ebr,hp}"), std::string::npos)
        << message;
  }
  // The canned hp twins accept ONLY the hp plane.
  try {
    make_snapshot("fig3_cas_hp:reclaim=ebr", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("does not support reclaim=ebr"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("supported: hp"), std::string::npos) << message;
  }
  // Combination rules fail loudly at construction, not deep in a workload:
  // shards out of range, hp with the write ablation, hp with sharding,
  // sharding on the versioned plane.
  EXPECT_THROW(make_snapshot("fig3_cas:shards=0", 4, 2),
               std::invalid_argument);
  EXPECT_THROW(make_snapshot("fig3_cas:shards=17", 4, 2),
               std::invalid_argument);
  EXPECT_THROW(make_snapshot("fig3_cas:cas=false,reclaim=hp", 4, 2),
               std::invalid_argument);
  EXPECT_THROW(make_snapshot("fig3_cas:reclaim=hp,shards=2", 4, 2),
               std::invalid_argument);
  EXPECT_THROW(make_snapshot("fig3_cas:value=versioned,shards=2", 4, 2),
               std::invalid_argument);
}

TEST(SnapshotRegistry, CatalogueListsPerImplementationReclaimPlanes) {
  std::string catalogue = snapshot_catalogue();
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    EXPECT_NE(catalogue.find("{reclaim=" + info->reclaims + "}"),
              std::string::npos)
        << info->name << " reclaim planes missing from catalogue";
  }
  EXPECT_NE(catalogue.find("reclaim=<plane>"), std::string::npos);
}

TEST(SnapshotRegistry, DefaultReclaimPlaneIsTheFirstListed) {
  EXPECT_TRUE(reclaim_plane_supported("ebr,hp", "ebr"));
  EXPECT_TRUE(reclaim_plane_supported("ebr,hp", "hp"));
  EXPECT_FALSE(reclaim_plane_supported("ebr", "hp"));
  EXPECT_FALSE(reclaim_plane_supported("hp", "ebr"));
  EXPECT_EQ(default_reclaim_plane("ebr,hp"), "ebr");
  EXPECT_EQ(default_reclaim_plane("hp"), "hp");
  // Capability field vs instance, for every entry.
  exec::ScopedPid pid(0);
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    auto snap = test::make_snapshot(*info, 4, 2);
    EXPECT_EQ(snap->reclaim_plane(), default_reclaim_plane(info->reclaims))
        << info->name;
  }
}

TEST(SnapshotRegistry, UnknownOptionSuggestsTheClosestQueriedKey) {
  // A typo'd option names its likely intent: the candidate pool is the
  // keys the registry and the factory actually asked about.
  try {
    make_snapshot("fig3_cas:reclam=hp", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("unknown option 'reclam'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'reclaim'"), std::string::npos)
        << message;
  }
  try {
    make_snapshot("fig3_cas:adaptve=false", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'adaptive'"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Ingest knobs (batch= / coalesce_window=) and the batch capability flag.
// ---------------------------------------------------------------------------

TEST(SnapshotRegistry, IngestKnobsParseThroughTheSpec) {
  exec::ScopedPid pid(0);
  IngestKnobs knobs;
  auto snap =
      make_snapshot("fig3_cas:batch=16,coalesce_window=64", 4, 2, &knobs);
  EXPECT_EQ(knobs.batch, 16u);
  EXPECT_EQ(knobs.coalesce_window, 64u);
  EXPECT_TRUE(knobs.batching_requested());
  // The snapshot itself is unchanged by the knobs; they describe how the
  // caller should feed it.
  snap->update(0, 5);
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{5}));
  // Absent knobs keep the caller's defaults (singleton ingest).
  IngestKnobs defaults;
  make_snapshot("fig3_cas", 4, 2, &defaults);
  EXPECT_EQ(defaults.batch, 1u);
  EXPECT_EQ(defaults.coalesce_window, 0u);
  EXPECT_FALSE(defaults.batching_requested());
  // The knobs compose with the other universal options.
  IngestKnobs mixed;
  auto grown = make_snapshot("fig3_cas:m0=8,batch=4", 4, 2, &mixed);
  EXPECT_EQ(grown->num_components(), 8u);
  EXPECT_EQ(mixed.batch, 4u);
}

TEST(SnapshotRegistry, AffinityKnobParsesThroughTheSpec) {
  // affinity=segment rides in the ingest knobs (it describes worker
  // placement, a caller-side concern) and composes with the reclaim
  // shape options.
  IngestKnobs knobs;
  auto snap =
      make_snapshot("fig3_cas:affinity=segment,shards=2", 4, 2, &knobs);
  EXPECT_EQ(knobs.affinity, "segment");
  EXPECT_EQ(snap->reclaim_shards(), 2u);
  IngestKnobs defaults;
  make_snapshot("fig3_cas", 4, 2, &defaults);
  EXPECT_EQ(defaults.affinity, "none");
  // A caller without a knobs sink cannot honor it; a bad value fails.
  EXPECT_THROW(make_snapshot("fig3_cas:affinity=segment", 4, 2),
               std::invalid_argument);
  IngestKnobs bad;
  EXPECT_THROW(make_snapshot("fig3_cas:affinity=wat", 4, 2, &bad),
               std::invalid_argument);
}

TEST(SnapshotRegistry, IngestKnobsRejectUnsupportedCombos) {
  // Batching on an entry without a batch path fails with the catalogue
  // (which marks the capable entries), not deep inside a workload.
  IngestKnobs knobs;
  try {
    make_snapshot("fig1_register:batch=4", 4, 2, &knobs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("does not support batched updates"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("known implementations"), std::string::npos)
        << message;
    EXPECT_NE(message.find("(batch)"), std::string::npos) << message;
  }
  EXPECT_THROW(
      make_snapshot("fig1_register:coalesce_window=8", 4, 2, &knobs),
      std::invalid_argument);
  // batch=0 has no flush threshold.
  EXPECT_THROW(make_snapshot("fig3_cas:batch=0", 4, 2, &knobs),
               std::invalid_argument);
  // An entry point that feeds writes one at a time (the three-argument
  // make) must not silently ignore a batching request.
  try {
    make_snapshot("fig3_cas:batch=16", 4, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cannot honor ingest knobs"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(make_snapshot("fig3_cas:coalesce_window=4", 4, 2),
               std::invalid_argument);
}

TEST(SnapshotRegistry, CatalogueMarksBatchCapability) {
  std::string catalogue = snapshot_catalogue();
  EXPECT_NE(catalogue.find("(batch)"), std::string::npos);
  EXPECT_NE(catalogue.find("batch=<k>"), std::string::npos);
  EXPECT_NE(catalogue.find("coalesce_window=<w>"), std::string::npos);
  // Per entry: the capability marker appears on its line exactly when the
  // flag is set.
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    std::size_t start = catalogue.find("  " + info->name + " ");
    ASSERT_NE(start, std::string::npos) << info->name;
    std::size_t end = catalogue.find('\n', start);
    std::string line = catalogue.substr(start, end - start);
    EXPECT_EQ(line.find("(batch)") != std::string::npos,
              info->supports_batch)
        << line;
  }
}

// The scan-attempt cap: `max_attempts` is the service-facing spelling,
// `cap` the historical alias, and max_attempts wins when both are given.
// The help text must teach the preferred spelling first.
TEST(SnapshotRegistry, ScanAttemptCapAliasPrecedence) {
  exec::ScopedPid pid(0);
  for (const char* base : {"double_collect", "seqlock"}) {
    const std::string name(base);
    // Sequentially, the double collect needs two collects to agree, so a
    // cap of 1 starves even an uncontended scan -- the loud signal that
    // the cap reached the implementation.  (The seqlock succeeds on the
    // first attempt when uncontended, so drive its cap through the same
    // specs and just assert both spellings construct.)
    if (name == "double_collect") {
      auto capped = make_snapshot(name + ":cap=1", 4, 2);
      EXPECT_THROW(capped->scan({0}), baseline::StarvationError);
      auto capped_pref = make_snapshot(name + ":max_attempts=1", 4, 2);
      EXPECT_THROW(capped_pref->scan({0}), baseline::StarvationError);
      // max_attempts=0 (retry forever) beats the alias asking to starve.
      auto uncapped = make_snapshot(name + ":max_attempts=0,cap=1", 4, 2);
      EXPECT_EQ(uncapped->scan({0}), (std::vector<std::uint64_t>{0}));
    } else {
      auto a = make_snapshot(name + ":cap=3", 4, 2);
      EXPECT_EQ(a->scan({0}), (std::vector<std::uint64_t>{0}));
      auto b = make_snapshot(name + ":max_attempts=0,cap=1", 4, 2);
      EXPECT_EQ(b->scan({0}), (std::vector<std::uint64_t>{0}));
    }
  }
}

TEST(SnapshotRegistry, HelpTextListsPreferredSpellingBeforeAlias) {
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    std::size_t alias = info->options_help.find("cap=");
    if (alias == std::string::npos) continue;
    std::size_t preferred = info->options_help.find("max_attempts=");
    ASSERT_NE(preferred, std::string::npos) << info->name;
    EXPECT_LT(preferred, alias)
        << info->name << ": help text teaches the alias first: "
        << info->options_help;
  }
}

// ---------------------------------------------------------------------------
// Capability flags vs the instances.
// ---------------------------------------------------------------------------

class RegistryFlagsTest
    : public ::testing::TestWithParam<const SnapshotInfo*> {};

TEST_P(RegistryFlagsTest, FlagsMatchInstance) {
  const SnapshotInfo& info = *GetParam();
  auto snap = test::make_snapshot(info, 4, 2);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(info.is_wait_free, snap->is_wait_free()) << info.name;
  EXPECT_EQ(info.is_local, snap->is_local()) << info.name;
  EXPECT_EQ(info.supports_batch,
            snap->batch_atomicity() != core::BatchAtomicity::kUnsupported)
      << info.name;
  EXPECT_EQ(snap->num_components(), 4u) << info.name;
  EXPECT_FALSE(snap->name().empty()) << info.name;
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, RegistryFlagsTest,
                         ::testing::ValuesIn(test::snapshot_impls()),
                         test::snapshot_param_name);

// ---------------------------------------------------------------------------
// Sequential scan contract through the registry: unsorted, duplicate, and
// empty index sets, and scan_all, for every registered implementation.
// ---------------------------------------------------------------------------

class RegistryScanContractTest
    : public ::testing::TestWithParam<const SnapshotInfo*> {};

TEST_P(RegistryScanContractTest, UnsortedDuplicateAndEmptyIndexSets) {
  constexpr std::uint32_t kM = 12;
  auto snap = test::make_snapshot(*GetParam(), kM, 3);
  exec::ScopedPid pid(0);
  for (std::uint32_t i = 0; i < kM; ++i) snap->update(i, 100 + i);

  // Unsorted request: values must come back in request order.
  EXPECT_EQ(snap->scan({7, 0, 11, 3}),
            (std::vector<std::uint64_t>{107, 100, 111, 103}));
  // Duplicates: every occurrence is answered.
  EXPECT_EQ(snap->scan({5, 5, 2, 5}),
            (std::vector<std::uint64_t>{105, 105, 102, 105}));
  // Unsorted AND duplicated.
  EXPECT_EQ(snap->scan({9, 1, 9, 1}),
            (std::vector<std::uint64_t>{109, 101, 109, 101}));
  // Empty set.
  std::vector<std::uint32_t> none;
  EXPECT_TRUE(snap->scan(std::span<const std::uint32_t>(none)).empty());
}

TEST_P(RegistryScanContractTest, ScanAllMatchesSequentialModel) {
  constexpr std::uint32_t kM = 9;
  auto snap = test::make_snapshot(*GetParam(), kM, 3);
  exec::ScopedPid pid(0);
  std::vector<std::uint64_t> model(kM, 0);
  // Interleave updates and partial scans, then compare the complete scan.
  for (std::uint32_t round = 1; round <= 4; ++round) {
    for (std::uint32_t i = 0; i < kM; i += round) {
      snap->update(i, round * 1000 + i);
      model[i] = round * 1000 + i;
    }
    EXPECT_EQ(snap->scan_all(), model) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, RegistryScanContractTest,
                         ::testing::ValuesIn(test::snapshot_impls()),
                         test::snapshot_param_name);

}  // namespace
}  // namespace psnap::registry
