#include "runtime/sim_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "primitives/primitives.h"
#include "runtime/explore.h"

namespace psnap::runtime {
namespace {

TEST(SimScheduler, SerializesSteps) {
  // Two processes each incrementing a shared register via read+write; under
  // arbitrary schedules the final value is between 2 and 4, and the total
  // step count is exactly 2 steps/op * 2 ops/proc * 2 procs.
  primitives::Register<std::uint64_t> reg(0);
  SimScheduler sched;
  for (int p = 0; p < 2; ++p) {
    sched.add_process([&reg] {
      for (int i = 0; i < 2; ++i) {
        std::uint64_t v = reg.load();
        reg.store(v + 1);
      }
    });
  }
  auto result = sched.run();
  EXPECT_EQ(result.total_steps, 8u);
  std::uint64_t final = reg.peek();
  EXPECT_GE(final, 2u);
  EXPECT_LE(final, 4u);
}

TEST(SimScheduler, LowestPolicyIsDeterministic) {
  auto run_once = [] {
    primitives::Register<std::uint64_t> reg(0);
    SimScheduler sched;
    for (int p = 0; p < 3; ++p) {
      sched.add_process([&reg, p] {
        std::uint64_t v = reg.load();
        reg.store(v * 10 + std::uint64_t(p) + 1);
      });
    }
    sched.run();
    return reg.peek();
  };
  std::uint64_t first = run_once();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(run_once(), first);
}

TEST(SimScheduler, RandomPolicyDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    primitives::Register<std::uint64_t> reg(0);
    SimScheduler::Options options;
    options.policy = SimScheduler::Policy::kRandom;
    options.seed = seed;
    SimScheduler sched(options);
    for (int p = 0; p < 3; ++p) {
      sched.add_process([&reg, p] {
        std::uint64_t v = reg.load();
        reg.store(v * 10 + std::uint64_t(p) + 1);
      });
    }
    sched.run();
    return reg.peek();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  // Different seeds usually give different interleavings; check a few.
  bool diverged = false;
  for (std::uint64_t s = 1; s < 10 && !diverged; ++s) {
    diverged = run_once(s) != run_once(s + 100);
  }
  EXPECT_TRUE(diverged);
}

TEST(SimScheduler, ScriptReplayReproducesRun) {
  auto run_with = [](const std::vector<std::uint32_t>& script,
                     std::uint64_t* out) {
    primitives::Register<std::uint64_t> reg(0);
    SimScheduler::Options options;
    options.script = script;
    SimScheduler sched(options);
    for (int p = 0; p < 2; ++p) {
      sched.add_process([&reg, p] {
        std::uint64_t v = reg.load();
        reg.store(v * 10 + std::uint64_t(p) + 1);
      });
    }
    auto result = sched.run();
    *out = reg.peek();
    return result;
  };
  std::uint64_t value1 = 0, value2 = 0;
  auto r1 = run_with({1, 0, 1, 0}, &value1);
  auto r2 = run_with(r1.chosen_rank, &value2);
  EXPECT_EQ(value1, value2);
  EXPECT_EQ(r1.chosen_rank, r2.chosen_rank);
}

TEST(SimScheduler, ProcessWithNoStepsCompletes) {
  SimScheduler sched;
  bool ran = false;
  sched.add_process([&ran] { ran = true; });
  auto result = sched.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(result.total_steps, 0u);
}

TEST(SimScheduler, PidsAssignedInOrder) {
  std::vector<std::uint32_t> pids(3, 99);
  SimScheduler sched;
  for (int p = 0; p < 3; ++p) {
    sched.add_process([&pids, p] {
      pids[static_cast<std::size_t>(p)] = exec::ctx().pid;
    });
  }
  sched.run();
  EXPECT_EQ(pids, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(ExploreDfs, EnumeratesAllInterleavings) {
  // Two processes, one step each: exactly C(2,1)=2 interleavings.
  std::set<std::uint64_t> outcomes;
  auto stats = explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        primitives::Register<std::uint64_t> reg(0);
        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        for (int p = 0; p < 2; ++p) {
          sched.add_process([&reg, p] {
            std::uint64_t v = reg.load();
            reg.store(v * 10 + std::uint64_t(p) + 1);
          });
        }
        auto result = sched.run();
        outcomes.insert(reg.peek());
        return result;
      });
  EXPECT_TRUE(stats.exhausted);
  // Interleavings of (r0 w0) and (r1 w1): outcomes {12, 21, 1, 2 ...}
  // At minimum both sequential orders appear.
  EXPECT_TRUE(outcomes.count(12) == 1 || outcomes.count(21) == 1);
  EXPECT_GE(outcomes.size(), 2u);
  // 4 steps total, interleavings = C(4,2) = 6 schedules.
  EXPECT_EQ(stats.schedules_run, 6u);
}

TEST(ExploreDfs, BudgetRespected) {
  auto stats = explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        primitives::Register<std::uint64_t> reg(0);
        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        for (int p = 0; p < 3; ++p) {
          sched.add_process([&reg] {
            for (int i = 0; i < 3; ++i) {
              reg.store(reg.load() + 1);
            }
          });
        }
        return sched.run();
      },
      ExploreOptions{.max_schedules = 25});
  EXPECT_EQ(stats.schedules_run, 25u);
  EXPECT_FALSE(stats.exhausted);
}

TEST(ExploreRandom, RunsRequestedCount) {
  int runs = 0;
  explore_random([&](std::uint64_t) { ++runs; }, 17);
  EXPECT_EQ(runs, 17);
}

}  // namespace
}  // namespace psnap::runtime
