// Execution tracing (runtime/trace.h): the sink's bounded per-pid rings,
// the TracingSnapshot decorator's event vocabulary, the JSONL round-trip,
// and the offline audit -- including that seeded violations of every
// audited property are actually reported.
#include "runtime/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"

namespace psnap::runtime {
namespace {

TraceArtifact artifact_from(const TraceSink& sink, std::uint32_t m0,
                            std::uint32_t final_m) {
  TraceSink::Drained drained = sink.drain();
  TraceArtifact artifact;
  artifact.impl = "test";
  artifact.m0 = m0;
  artifact.final_m = final_m;
  artifact.emitted = drained.emitted;
  artifact.dropped = drained.dropped;
  artifact.events = std::move(drained.events);
  return artifact;
}

TEST(TraceSinkTest, RecordsPerPidAndMergesBySeq) {
  TraceSink sink(4, 8);
  {
    exec::ScopedPid pid(1);
    sink.emit(TraceEventKind::kUpdate, 0, 10);
  }
  {
    exec::ScopedPid pid(0);
    sink.emit(TraceEventKind::kUpdate, 1, 11);
  }
  {
    exec::ScopedPid pid(1);
    sink.emit(TraceEventKind::kScan, 1, 2);
  }
  TraceSink::Drained drained = sink.drain();
  ASSERT_EQ(drained.events.size(), 3u);
  EXPECT_EQ(drained.emitted, 3u);
  // Merge order is the global ticket order, not pid order.
  EXPECT_EQ(drained.events[0].pid, 1u);
  EXPECT_EQ(drained.events[1].pid, 0u);
  EXPECT_EQ(drained.events[2].pid, 1u);
  EXPECT_LT(drained.events[0].seq, drained.events[1].seq);
  EXPECT_LT(drained.events[1].seq, drained.events[2].seq);
}

TEST(TraceSinkTest, BoundedRingOverwritesOldestAndCountsDrops) {
  TraceSink sink(2, 4);  // capacity rounds to 4 events per pid
  exec::ScopedPid pid(0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.emit(TraceEventKind::kUpdate, i, i);
  }
  TraceSink::Drained drained = sink.drain();
  EXPECT_EQ(drained.emitted, 10u);
  ASSERT_EQ(drained.dropped.size(), 2u);
  EXPECT_EQ(drained.dropped[0], 6u);
  EXPECT_EQ(drained.dropped[1], 0u);
  // The NEWEST events survive.
  ASSERT_EQ(drained.events.size(), 4u);
  EXPECT_EQ(drained.events.front().a, 6u);
  EXPECT_EQ(drained.events.back().a, 9u);
}

TEST(TracingSnapshotTest, EmitsTheDocumentedVocabulary) {
  exec::ScopedPid pid(0);
  auto snap = registry::make_snapshot("fig3_cas_versioned_batch", 4, 2);
  TraceSink sink(2, 64);
  TracingSnapshot traced(*snap, sink);

  traced.update(1, 7);
  std::vector<core::BatchEntry> batch = {{0, 1}, {2, 2}, {3, 3}};
  traced.update_batch(std::span<const core::BatchEntry>(batch));
  (void)traced.scan({0, 3});
  std::vector<std::uint32_t> indices = {1};
  std::vector<std::uint64_t> out;
  (void)traced.scan_versioned(std::span<const std::uint32_t>(indices), out);
  std::uint32_t first = traced.add_components(2);
  EXPECT_EQ(first, 4u);

  TraceArtifact artifact = artifact_from(sink, 4, traced.num_components());
  ASSERT_EQ(artifact.events.size(), 6u);  // batch brackets: begin + end
  EXPECT_EQ(artifact.events[0].kind, TraceEventKind::kUpdate);
  EXPECT_EQ(artifact.events[0].a, 1u);
  EXPECT_EQ(artifact.events[0].b, 7u);
  EXPECT_EQ(artifact.events[1].kind, TraceEventKind::kBatchBegin);
  EXPECT_EQ(artifact.events[1].a, 3u);  // entries
  EXPECT_EQ(artifact.events[1].b, 3u);  // max index
  EXPECT_EQ(artifact.events[2].kind, TraceEventKind::kBatchEnd);
  EXPECT_EQ(artifact.events[3].kind, TraceEventKind::kScan);
  EXPECT_EQ(artifact.events[3].a, 3u);
  EXPECT_EQ(artifact.events[3].b, 2u);
  EXPECT_EQ(artifact.events[4].kind, TraceEventKind::kScanVersioned);
  EXPECT_EQ(artifact.events[4].c, 1u);
  EXPECT_EQ(artifact.events[5].kind, TraceEventKind::kGrow);
  EXPECT_EQ(artifact.events[5].a, 4u);
  EXPECT_EQ(artifact.events[5].b, 2u);

  TraceAuditReport report = audit_trace(artifact);
  EXPECT_TRUE(report.ok) << report.violations.front();
  EXPECT_EQ(report.events_checked, artifact.events.size());
}

TEST(TraceJsonlTest, DumpParseRoundTrip) {
  exec::ScopedPid pid(1);
  TraceSink sink(2, 16);
  sink.emit(TraceEventKind::kUpdate, 3, 999);
  sink.emit(TraceEventKind::kScanVersioned, 5, 3, 2);
  TraceArtifact artifact = artifact_from(sink, 4, 4);
  artifact.impl = "fig3_cas:value=versioned";

  std::ostringstream out;
  dump_jsonl(artifact, out);
  std::istringstream in(out.str());
  TraceArtifact parsed = parse_jsonl(in);

  EXPECT_EQ(parsed.impl, artifact.impl);
  EXPECT_EQ(parsed.m0, artifact.m0);
  EXPECT_EQ(parsed.final_m, artifact.final_m);
  EXPECT_EQ(parsed.emitted, artifact.emitted);
  EXPECT_EQ(parsed.dropped, artifact.dropped);
  ASSERT_EQ(parsed.events.size(), artifact.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, artifact.events[i].kind);
    EXPECT_EQ(parsed.events[i].pid, artifact.events[i].pid);
    EXPECT_EQ(parsed.events[i].seq, artifact.events[i].seq);
    EXPECT_EQ(parsed.events[i].a, artifact.events[i].a);
    EXPECT_EQ(parsed.events[i].b, artifact.events[i].b);
    EXPECT_EQ(parsed.events[i].c, artifact.events[i].c);
  }
}

TEST(TraceJsonlTest, MalformedInputThrows) {
  {
    std::istringstream in("{\"type\":\"event\",\"kind\":\"update\"}\n");
    EXPECT_THROW(parse_jsonl(in), std::invalid_argument);  // before header
  }
  {
    std::istringstream in(
        "{\"type\":\"header\",\"impl\":\"x\",\"m0\":1,\"emitted\":0,"
        "\"dropped\":[]}\n");
    EXPECT_THROW(parse_jsonl(in), std::invalid_argument);  // no footer
  }
  {
    std::istringstream in(
        "{\"type\":\"header\",\"impl\":\"x\",\"m0\":1,\"emitted\":0,"
        "\"dropped\":[]}\n"
        "{\"type\":\"event\",\"kind\":\"quux\",\"pid\":0,\"seq\":0,\"a\":0,"
        "\"b\":0,\"c\":0}\n"
        "{\"type\":\"footer\",\"final_m\":1}\n");
    EXPECT_THROW(parse_jsonl(in), std::invalid_argument);  // unknown kind
  }
}

TraceArtifact base_artifact(std::uint32_t m0, std::uint32_t final_m) {
  TraceArtifact artifact;
  artifact.impl = "seeded";
  artifact.m0 = m0;
  artifact.final_m = final_m;
  artifact.dropped = {0, 0};
  return artifact;
}

TraceEvent ev(TraceEventKind kind, std::uint32_t pid, std::uint64_t seq,
              std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
  TraceEvent e;
  e.kind = kind;
  e.pid = pid;
  e.seq = seq;
  e.a = a;
  e.b = b;
  e.c = c;
  return e;
}

TEST(TraceAuditTest, DetectsEpochRegressions) {
  TraceArtifact artifact = base_artifact(4, 4);
  artifact.events = {
      ev(TraceEventKind::kScanVersioned, 0, 0, /*epoch=*/5, 1, 1),
      ev(TraceEventKind::kScanVersioned, 0, 1, /*epoch=*/5, 1, 1),
  };
  TraceAuditReport report = audit_trace(artifact);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("epoch regression"),
            std::string::npos);
  // Different pids are different streams; no cross-pid ordering is claimed.
  artifact.events[1].pid = 1;
  EXPECT_TRUE(audit_trace(artifact).ok);
}

TEST(TraceAuditTest, DetectsTornBatches) {
  {
    // begin/end entry counts disagree.
    TraceArtifact artifact = base_artifact(4, 4);
    artifact.events = {
        ev(TraceEventKind::kBatchBegin, 0, 0, 3, 2),
        ev(TraceEventKind::kBatchEnd, 0, 1, 2, 2),
    };
    TraceAuditReport report = audit_trace(artifact);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.violations[0].find("torn batch"), std::string::npos);
  }
  {
    // A batch left open at end of trace is a torn publish.
    TraceArtifact artifact = base_artifact(4, 4);
    artifact.events = {ev(TraceEventKind::kBatchBegin, 0, 0, 3, 2)};
    TraceAuditReport report = audit_trace(artifact);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.violations[0].find("torn batch publish"),
              std::string::npos);
    // ...unless that pid's ring dropped events: the end may have been
    // overwritten, so pairing claims are waived for lossy pids.
    artifact.dropped = {1, 0};
    EXPECT_TRUE(audit_trace(artifact).ok);
  }
}

TEST(TraceAuditTest, DetectsWatermarkViolations) {
  {
    // Grow blocks must not overlap components that already existed.
    TraceArtifact artifact = base_artifact(4, 8);
    artifact.events = {ev(TraceEventKind::kGrow, 0, 0, /*first=*/2,
                          /*count=*/4)};
    TraceAuditReport report = audit_trace(artifact);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.violations[0].find("watermark"), std::string::npos);
  }
  {
    // Two blocks handed out the same range.
    TraceArtifact artifact = base_artifact(2, 6);
    artifact.events = {
        ev(TraceEventKind::kGrow, 0, 0, 2, 2),
        ev(TraceEventKind::kGrow, 1, 1, 2, 2),
    };
    EXPECT_FALSE(audit_trace(artifact).ok);
  }
  {
    // Disjoint, in-range blocks audit clean.
    TraceArtifact artifact = base_artifact(2, 6);
    artifact.events = {
        ev(TraceEventKind::kGrow, 0, 0, 2, 2),
        ev(TraceEventKind::kGrow, 1, 1, 4, 2),
    };
    EXPECT_TRUE(audit_trace(artifact).ok);
  }
}

TEST(TraceAuditTest, DetectsIndexBeyondFinalCount) {
  TraceArtifact artifact = base_artifact(4, 4);
  artifact.events = {ev(TraceEventKind::kUpdate, 0, 0, /*index=*/4, 1)};
  TraceAuditReport report = audit_trace(artifact);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("final component count"),
            std::string::npos);
}

}  // namespace
}  // namespace psnap::runtime
