// runtime::FaultPlan -- the named fault shapes the recovery suites are
// built on.  Checks the plan algebra (crash_at/stall_after/sweep/
// sweep_during/apply) and that the shapes mean what they claim against a
// real snapshot under the sim scheduler: a crashed process halts exactly
// where planned, a stalled worker stays registered forever, and
// measure_steps anchors call-site-relative windows.
#include <gtest/gtest.h>

#include <vector>

#include "registry/registry.h"
#include "runtime/fault_plan.h"
#include "runtime/sim_scheduler.h"

namespace psnap::runtime {
namespace {

TEST(FaultPlan, SweepCoversEveryStepInclusive) {
  auto plans = FaultPlan::sweep(/*pid=*/3, 5, 8);
  ASSERT_EQ(plans.size(), 4u);
  for (std::size_t k = 0; k < plans.size(); ++k) {
    ASSERT_EQ(plans[k].crashes().size(), 1u);
    EXPECT_EQ(plans[k].crashes()[0].pid, 3u);
    EXPECT_EQ(plans[k].crashes()[0].at_step, 5 + k);
  }
}

TEST(FaultPlan, SweepDuringIsCallSiteRelative) {
  // Operation under attack starts after 10 completed steps and takes 4:
  // the crash points are its steps, i.e. absolute steps 11..14.
  auto plans = FaultPlan::sweep_during(/*pid=*/0, 10, 4);
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_EQ(plans.front().crashes()[0].at_step, 11u);
  EXPECT_EQ(plans.back().crashes()[0].at_step, 14u);
}

TEST(FaultPlan, StallAfterIsCrashAtNextStep) {
  FaultPlan stall = FaultPlan{}.stall_after(2, 7);
  ASSERT_EQ(stall.crashes().size(), 1u);
  EXPECT_EQ(stall.crashes()[0].pid, 2u);
  EXPECT_EQ(stall.crashes()[0].at_step, 8u);
}

TEST(FaultPlan, ApplyMergesIntoExistingOptions) {
  SimScheduler::Options base;
  base.policy = SimScheduler::Policy::kRandom;
  base.seed = 42;
  base.crashes = {{5, 100}};

  FaultPlan plan = FaultPlan{}.crash_at(0, 3).crash_at(1, 9);
  SimScheduler::Options merged = plan.apply(base);

  EXPECT_EQ(merged.policy, SimScheduler::Policy::kRandom);
  EXPECT_EQ(merged.seed, 42u);
  ASSERT_EQ(merged.crashes.size(), 3u);  // pre-existing crash kept
  EXPECT_EQ(merged.crashes[0].pid, 5u);
  EXPECT_EQ(merged.crashes[1].pid, 0u);
  EXPECT_EQ(merged.crashes[2].pid, 1u);
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_FALSE(plan.empty());
}

// measure_steps anchors sweep_during windows: a solo run is
// schedule-independent, so the difference of two measurements isolates
// one operation's step count.
TEST(FaultPlan, MeasureStepsIsDeterministic) {
  auto one_update = [] {
    auto snap = registry::make_snapshot("fig3_cas", 2, 2);
    snap->update(0, 1);
  };
  std::uint64_t a = FaultPlan::measure_steps(one_update);
  std::uint64_t b = FaultPlan::measure_steps(one_update);
  ASSERT_GT(a, 0u);
  EXPECT_EQ(a, b);

  std::uint64_t base = FaultPlan::measure_steps(
      [] { auto snap = registry::make_snapshot("fig3_cas", 2, 2); });
  EXPECT_GT(a, base);  // the update itself costs steps
}

// The semantic claim behind every recovery sweep: a planned crash halts
// the victim exactly there (its later operations never run) while the
// survivor still finishes -- swept across the victim's whole operation,
// its step count anchored by measure_steps differences.
TEST(FaultPlan, CrashHaltsVictimSurvivorFinishes) {
  std::uint64_t constructed = FaultPlan::measure_steps(
      [] { auto snap = registry::make_snapshot("fig3_cas", 2, 2); });
  std::uint64_t with_update = FaultPlan::measure_steps([] {
    auto snap = registry::make_snapshot("fig3_cas", 2, 2);
    snap->update(0, 11);
  });
  std::uint64_t update_steps = with_update - constructed;
  ASSERT_GT(update_steps, 0u);

  for (const FaultPlan& plan : FaultPlan::sweep(0, 1, update_steps)) {
    auto snap = registry::make_snapshot("fig3_cas", 2, 2);
    bool victim_finished = false;
    bool survivor_finished = false;

    SimScheduler sched(plan.apply());
    sched.add_process([&] {
      snap->update(0, 11);
      victim_finished = true;
    });
    sched.add_process([&] {
      std::vector<std::uint64_t> out;
      snap->update(1, 22);
      snap->scan(std::vector<std::uint32_t>{0, 1}, out);
      survivor_finished = true;
    });
    sched.run();

    EXPECT_FALSE(victim_finished)
        << "crash at step " << plan.crashes()[0].at_step
        << " did not halt the victim";
    EXPECT_TRUE(survivor_finished);
  }
}

// A stalled (stop-cooperating) worker is indistinguishable from a crashed
// one to the survivors: it holds its announcements forever, and the
// wait-free implementation must complete around it.
TEST(FaultPlan, StalledWorkerDoesNotBlockSurvivors) {
  auto snap = registry::make_snapshot("fig3_cas", 2, 2);
  bool survivor_finished = false;

  SimScheduler sched(FaultPlan{}.stall_after(0, 3).apply());
  sched.add_process([&] {
    std::vector<std::uint64_t> out;
    snap->scan(std::vector<std::uint32_t>{0, 1}, out);  // stalls mid-scan
  });
  sched.add_process([&] {
    std::vector<std::uint64_t> out;
    for (std::uint64_t k = 1; k <= 5; ++k) snap->update(0, k);
    snap->scan(std::vector<std::uint32_t>{0, 1}, out);
    EXPECT_EQ(out[0], 5u);
    survivor_finished = true;
  });
  auto result = sched.run();

  EXPECT_TRUE(survivor_finished);
  EXPECT_FALSE(result.hit_step_limit);
}

}  // namespace
}  // namespace psnap::runtime
