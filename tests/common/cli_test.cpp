#include "common/cli.h"

#include <gtest/gtest.h>

namespace psnap {
namespace {

// Builds an argv array from string literals.
template <std::size_t N>
bool parse(CliFlags& flags, const char* (&args)[N]) {
  return flags.parse(static_cast<int>(N), const_cast<char**>(args));
}

TEST(CliFlags, DefaultsApplyWithoutArgs) {
  CliFlags flags;
  flags.define("threads", "4", "worker count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parse(flags, argv));
  EXPECT_EQ(flags.get_uint("threads"), 4u);
}

TEST(CliFlags, EqualsSyntax) {
  CliFlags flags;
  flags.define("threads", "4", "worker count");
  const char* argv[] = {"prog", "--threads=9"};
  ASSERT_TRUE(parse(flags, argv));
  EXPECT_EQ(flags.get_uint("threads"), 9u);
}

TEST(CliFlags, SpaceSyntax) {
  CliFlags flags;
  flags.define("name", "x", "a name");
  const char* argv[] = {"prog", "--name", "hello"};
  ASSERT_TRUE(parse(flags, argv));
  EXPECT_EQ(flags.get_string("name"), "hello");
}

TEST(CliFlags, BoolFlagBareForm) {
  CliFlags flags;
  flags.define("verbose", "false", "chatty output");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parse(flags, argv));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, UnknownFlagRejected) {
  CliFlags flags;
  flags.define("a", "1", "");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(parse(flags, argv));
}

TEST(CliFlags, HelpReturnsFalse) {
  CliFlags flags;
  flags.define("a", "1", "");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parse(flags, argv));
}

TEST(CliFlags, IntAndDouble) {
  CliFlags flags;
  flags.define("n", "-3", "");
  flags.define("f", "0.25", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parse(flags, argv));
  EXPECT_EQ(flags.get_int("n"), -3);
  EXPECT_DOUBLE_EQ(flags.get_double("f"), 0.25);
}

TEST(CliFlags, UintList) {
  CliFlags flags;
  flags.define("sizes", "1,2,8,64", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parse(flags, argv));
  auto sizes = flags.get_uint_list("sizes");
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[3], 64u);
}

TEST(CliFlags, PositionalArgumentRejected) {
  CliFlags flags;
  flags.define("a", "1", "");
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(parse(flags, argv));
}

}  // namespace
}  // namespace psnap
