#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psnap {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.37;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    double x = i * 0.37;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

TEST(FitLinear, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4}, ys{3, 5, 7, 9};  // y = 1 + 2x
  auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitLinear, FlatLine) {
  std::vector<double> xs{1, 2, 3}, ys{4, 4, 4};
  auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
}

TEST(FitPowerLaw, RecoversQuadraticExponent) {
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);
  }
  auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitPowerLaw, RecoversLinearExponent) {
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    xs.push_back(x);
    ys.push_back(7.0 * x);
  }
  auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

}  // namespace
}  // namespace psnap
