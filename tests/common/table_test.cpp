#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace psnap {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  // Header present, underline present, both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All four non-underline lines have aligned second column start.
  std::istringstream is(out);
  std::string header;
  std::getline(is, header);
  auto col = header.find("value");
  std::string line;
  std::getline(is, line);  // underline
  while (std::getline(is, line)) {
    ASSERT_GE(line.size(), col);
  }
}

TEST(TablePrinter, TitleEmitted) {
  TablePrinter t({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os, "My Table");
  EXPECT_NE(os.str().find("== My Table =="), std::string::npos);
}

TEST(TablePrinter, CsvRoundTrip) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(TablePrinter::fmt(0.5, 0), "0");  // rounds toward even
}

TEST(TablePrinter, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace psnap
