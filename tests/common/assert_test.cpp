#include "common/assert.h"

#include <gtest/gtest.h>

namespace psnap {
namespace {

TEST(Assert, PassingAssertIsSilent) {
  PSNAP_ASSERT(1 + 1 == 2);
  PSNAP_ASSERT_MSG(true, "never shown");
}

TEST(Assert, EvaluationsAreCounted) {
  std::uint64_t before = detail::tls_assert_evaluations;
  PSNAP_ASSERT(true);
  PSNAP_ASSERT(true);
  EXPECT_EQ(detail::tls_assert_evaluations, before + 2);
}

TEST(AssertDeathTest, FailingAssertAborts) {
  EXPECT_DEATH(PSNAP_ASSERT(1 == 2), "invariant violated");
}

TEST(AssertDeathTest, MessageIncluded) {
  EXPECT_DEATH(PSNAP_ASSERT_MSG(false, "the-details"), "the-details");
}

}  // namespace
}  // namespace psnap
