#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace psnap {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference value from the published SplitMix64 algorithm with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowInRange) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneIsZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextInInclusiveBounds) {
  Xoshiro256 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.next_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextBoolExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro256, NextBoolRoughlyCalibrated) {
  Xoshiro256 rng(19);
  int heads = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  double p = double(heads) / kTrials;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Xoshiro256, UniformityChiSquaredSmoke) {
  // 10 buckets, 50k samples: every bucket within 10% of expectation.
  Xoshiro256 rng(23);
  std::vector<int> buckets(10, 0);
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    ++buckets[static_cast<std::size_t>(rng.next_below(10))];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

TEST(Xoshiro256, ShufflePreservesElements) {
  Xoshiro256 rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Xoshiro256, ShuffleActuallyPermutes) {
  Xoshiro256 rng(31);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is astronomically small
}

TEST(Xoshiro256, SampleWithoutReplacementDistinctSorted) {
  Xoshiro256 rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.sample_without_replacement(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<std::uint32_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 10u);
    for (auto x : sample) EXPECT_LT(x, 50u);
  }
}

TEST(Xoshiro256, SampleWithoutReplacementFullRange) {
  Xoshiro256 rng(41);
  auto sample = rng.sample_without_replacement(8, 8);
  ASSERT_EQ(sample.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Xoshiro256, SampleCoversRangeOverTrials) {
  Xoshiro256 rng(43);
  std::set<std::uint32_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    for (auto x : rng.sample_without_replacement(16, 4)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 16u);
}

}  // namespace
}  // namespace psnap
