#include "reclaim/sharded_ebr.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "reclaim/pool.h"

namespace psnap::reclaim {
namespace {

struct Node {
  static std::atomic<int> live;
  Node() { live.fetch_add(1); }
  ~Node() { live.fetch_sub(1); }
  std::uint64_t payload = 0;
};
std::atomic<int> Node::live{0};

TEST(ShardedEbr, ShardMappingFollowsSegments) {
  ShardedEbr sharded(4, /*segment_components=*/8);
  // Components within one segment share a shard...
  EXPECT_EQ(sharded.shard_of(0), sharded.shard_of(7));
  // ...and consecutive segments round-robin over the shards.
  EXPECT_EQ(sharded.shard_of(8), 1u);
  EXPECT_EQ(sharded.shard_of(16), 2u);
  EXPECT_EQ(sharded.shard_of(24), 3u);
  EXPECT_EQ(sharded.shard_of(32), 0u);  // wraps
  EXPECT_EQ(&sharded.domain_of(9), &sharded.domain(1));
  EXPECT_EQ(&sharded.meta(), &sharded.domain(0));
}

TEST(ShardedEbr, SingleShardDegeneratesToOneDomain) {
  ShardedEbr sharded;  // defaults: 1 shard
  EXPECT_EQ(sharded.num_shards(), 1u);
  EXPECT_EQ(sharded.shard_of(0), 0u);
  EXPECT_EQ(sharded.shard_of(123456), 0u);
}

TEST(ShardedEbr, ParkedPinStallsOnlyItsOwnShard) {
  // The tentpole property: a reader parked in shard 0 freezes shard 0's
  // reclamation but leaves every other shard advancing freely.  With one
  // global domain the same parked pin would freeze ALL of it.
  Node::live = 0;
  {
    ShardedEbr sharded(2, /*segment_components=*/1);
    std::uint32_t parked_slot = sharded.domain(0).enter();  // park in shard 0

    // Retire through both shards, then push both past the reclaim
    // threshold so try_reclaim runs.
    for (int round = 0; round < 200; ++round) {
      sharded.domain(0).retire(new Node);
      sharded.domain(1).retire(new Node);
    }
    sharded.domain(1).try_reclaim();
    sharded.domain(1).try_reclaim();
    sharded.domain(1).try_reclaim();

    // Shard 1 reclaimed; shard 0 is frozen behind the parked pin.
    EXPECT_GT(sharded.domain(1).freed_count(), 0u);
    EXPECT_EQ(sharded.domain(0).freed_count(), 0u);

    // Unpark: shard 0 catches up.
    sharded.domain(0).exit(parked_slot);
    sharded.domain(0).try_reclaim();
    sharded.domain(0).try_reclaim();
    sharded.domain(0).try_reclaim();
    EXPECT_GT(sharded.domain(0).freed_count(), 0u);

    // Aggregates cover all shards.
    EXPECT_EQ(sharded.retired_count(), 400u);
    EXPECT_EQ(sharded.outstanding(),
              sharded.retired_count() - sharded.freed_count());
  }
  EXPECT_EQ(Node::live.load(), 0);  // destructors drained everything
}

TEST(ShardedEbr, MultiGuardPinsOnDemandAndIsIdempotent) {
  ShardedEbr sharded(4, /*segment_components=*/2);
  {
    ShardedEbr::MultiGuard guard(sharded);
    guard.pin_component(0);             // shard 0
    guard.pin_component(1);             // shard 0 again: no second enter
    guard.pin_component(2);             // shard 1
    std::array<std::uint32_t, 3> comps{4, 5, 6};  // shards 2, 2, 3
    guard.pin_components(comps);
    guard.pin_meta();                   // shard 0, already pinned

    // A pinned shard's epoch cannot advance past the pin.
    std::uint64_t before = sharded.domain(0).global_epoch();
    sharded.domain(0).try_reclaim();
    EXPECT_LE(sharded.domain(0).global_epoch(), before + 1);
  }
  // All pins released: every shard can advance normally again.
  for (std::uint32_t s = 0; s < 4; ++s) {
    std::uint64_t before = sharded.domain(s).global_epoch();
    sharded.domain(s).try_reclaim();
    sharded.domain(s).try_reclaim();
    EXPECT_GT(sharded.domain(s).global_epoch(), before);
  }
}

TEST(ShardedEbr, MultiGuardNestsWithPlainGuards) {
  // MultiGuard uses the domains' reentrant enter/exit protocol, so nesting
  // with Guard (either order) must be safe and must not unpin early.
  ShardedEbr sharded(2, /*segment_components=*/1);
  {
    EbrDomain::Guard outer(sharded.domain(0));
    {
      ShardedEbr::MultiGuard guard(sharded);
      guard.pin(0);
      guard.pin(1);
    }
    // Inner multi-guard gone; the outer pin still holds shard 0.
    sharded.domain(0).retire(new Node);
    std::uint64_t epoch_before = sharded.domain(0).global_epoch();
    sharded.domain(0).try_reclaim();
    sharded.domain(0).try_reclaim();
    // Epoch may advance at most once past the pinned generation.
    EXPECT_LE(sharded.domain(0).global_epoch(), epoch_before + 1);
  }
}

TEST(ShardedEbr, OnePoolServesAllShards) {
  // The slots.h invariant in action: a thread resolves to the same slot in
  // every shard's domain, so a single Pool with per-shard banks recycles
  // nodes retired through any shard back to the retiring thread.
  Node::live = 0;
  {
    ShardedEbr sharded(2, /*segment_components=*/1);
    Pool<Node> pool(sharded.num_shards());

    auto h0 = pool.acquire(sharded.domain(0), 0);
    auto h1 = pool.acquire(sharded.domain(1), 1);
    Node* n0 = h0.release();
    Node* n1 = h1.release();
    EXPECT_EQ(pool.fresh_count(), 2u);

    pool.recycle(sharded.domain(0), n0, 0);
    pool.recycle(sharded.domain(1), n1, 1);
    for (int i = 0; i < 3; ++i) {
      sharded.domain(0).try_reclaim();
      sharded.domain(1).try_reclaim();
    }
    EXPECT_EQ(pool.pooled_count(), 2u);

    // Reacquire from each shard's bank: both hits, no fresh allocation.
    auto r0 = pool.acquire(sharded.domain(0), 0);
    auto r1 = pool.acquire(sharded.domain(1), 1);
    EXPECT_EQ(r0.get(), n0);
    EXPECT_EQ(r1.get(), n1);
    EXPECT_EQ(pool.reused_count(), 2u);
    EXPECT_EQ(pool.fresh_count(), 2u);
    // Handles return the nodes to the banks on scope exit; the pool
    // destructor deletes them.
  }
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(ShardedEbr, ConcurrentShardTrafficIsIndependent) {
  // Writers hammering distinct shards never touch each other's epochs or
  // retired lists; everything is freed by the end.
  Node::live = 0;
  {
    ShardedEbr sharded(4, /*segment_components=*/1);
    std::array<std::thread, 4> threads;
    for (std::uint32_t s = 0; s < 4; ++s) {
      threads[s] = std::thread([&sharded, s] {
        EbrDomain& d = sharded.domain(s);
        for (int i = 0; i < 2000; ++i) {
          std::uint32_t slot = d.enter();
          d.retire(new Node);
          d.exit(slot);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(sharded.retired_count(), 8000u);
    // Each shard saw only its own writer, so reclamation kept up: far
    // fewer than the full population can still be outstanding.
    EXPECT_LT(sharded.outstanding(), 8000u);
  }
  EXPECT_EQ(Node::live.load(), 0);
}

}  // namespace
}  // namespace psnap::reclaim
