#include "reclaim/hazard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace psnap::reclaim {
namespace {

struct Node {
  static std::atomic<int> live;
  Node() { live.fetch_add(1); }
  ~Node() { live.fetch_sub(1); }
  int value = 0;
};
std::atomic<int> Node::live{0};

TEST(Hazard, ProtectReturnsCurrentPointer) {
  HazardDomain domain;
  std::atomic<Node*> src{new Node};
  Node* p = domain.protect(src, 0);
  EXPECT_EQ(p, src.load());
  domain.clear(0);
  delete src.load();
}

TEST(Hazard, ProtectedNodeSurvivesScan) {
  Node::live = 0;
  HazardDomain domain;
  std::atomic<Node*> src{new Node};
  Node* p = domain.protect(src, 0);
  domain.retire(p);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 1);  // still protected
  domain.clear(0);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, UnprotectedNodesFreedByScan) {
  Node::live = 0;
  HazardDomain domain;
  for (int i = 0; i < 50; ++i) domain.retire(new Node);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 0);
  EXPECT_EQ(domain.outstanding(), 0u);
}

TEST(Hazard, DestructorDrains) {
  Node::live = 0;
  {
    HazardDomain domain;
    for (int i = 0; i < 9; ++i) domain.retire(new Node);
  }
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, ProtectFollowsConcurrentSwaps) {
  // The protect loop must re-validate: after it returns, the returned
  // pointer was both the source value and published as hazardous at one
  // instant, so it can never be freed under us.
  Node::live = 0;
  {
    HazardDomain domain;
    std::atomic<Node*> src{new Node};
    std::atomic<bool> stop{false};

    std::thread swapper([&] {
      while (!stop) {
        Node* fresh = new Node;
        Node* old = src.exchange(fresh);
        domain.retire(old);
      }
    });

    for (int i = 0; i < 2000; ++i) {
      Node* p = domain.protect(src, 0);
      // Touching the node must be safe.
      EXPECT_GE(p->value, 0);
      domain.clear(0);
    }
    stop = true;
    swapper.join();
    delete src.load();
    // Retired nodes sit in the swapper's per-thread list; only the domain
    // destructor drains other threads' lists.
  }
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, MultipleIndicesIndependent) {
  HazardDomain domain;
  std::atomic<Node*> a{new Node}, b{new Node};
  Node* pa = domain.protect(a, 0);
  Node* pb = domain.protect(b, 1);
  domain.retire(pa);
  domain.retire(pb);
  domain.clear(0);
  domain.scan_and_free();
  // Only b remains protected.
  EXPECT_EQ(domain.outstanding(), 1u);
  domain.clear_all();
  domain.scan_and_free();
  EXPECT_EQ(domain.outstanding(), 0u);
}

TEST(Hazard, RetirePressureTriggersAutomaticScan) {
  Node::live = 0;
  HazardDomain domain;
  // Exceed the 2 * capacity threshold; an automatic scan must have fired.
  constexpr int kNodes =
      2 * int(HazardDomain::kMaxThreads * HazardDomain::kHazardsPerThread) + 64;
  for (int i = 0; i < kNodes; ++i) domain.retire(new Node);
  EXPECT_LT(domain.outstanding(), std::uint64_t(kNodes));
}

}  // namespace
}  // namespace psnap::reclaim
