#include "reclaim/hazard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/exec.h"
#include "reclaim/slots.h"

namespace psnap::reclaim {
namespace {

struct Node {
  static std::atomic<int> live;
  Node() { live.fetch_add(1); }
  ~Node() { live.fetch_sub(1); }
  int value = 0;
};
std::atomic<int> Node::live{0};

TEST(Hazard, ProtectReturnsCurrentPointer) {
  HazardDomain domain;
  std::atomic<Node*> src{new Node};
  Node* p = domain.protect(src, 0);
  EXPECT_EQ(p, src.load());
  domain.clear(0);
  delete src.load();
}

TEST(Hazard, ProtectedNodeSurvivesScan) {
  Node::live = 0;
  HazardDomain domain;
  std::atomic<Node*> src{new Node};
  Node* p = domain.protect(src, 0);
  domain.retire(p);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 1);  // still protected
  domain.clear(0);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, UnprotectedNodesFreedByScan) {
  Node::live = 0;
  HazardDomain domain;
  for (int i = 0; i < 50; ++i) domain.retire(new Node);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 0);
  EXPECT_EQ(domain.outstanding(), 0u);
}

TEST(Hazard, DestructorDrains) {
  Node::live = 0;
  {
    HazardDomain domain;
    for (int i = 0; i < 9; ++i) domain.retire(new Node);
  }
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, ProtectFollowsConcurrentSwaps) {
  // The protect loop must re-validate: after it returns, the returned
  // pointer was both the source value and published as hazardous at one
  // instant, so it can never be freed under us.
  Node::live = 0;
  {
    HazardDomain domain;
    std::atomic<Node*> src{new Node};
    std::atomic<bool> stop{false};

    std::thread swapper([&] {
      while (!stop) {
        Node* fresh = new Node;
        Node* old = src.exchange(fresh);
        domain.retire(old);
      }
    });

    for (int i = 0; i < 2000; ++i) {
      Node* p = domain.protect(src, 0);
      // Touching the node must be safe.
      EXPECT_GE(p->value, 0);
      domain.clear(0);
    }
    stop = true;
    swapper.join();
    delete src.load();
    // Retired nodes sit in the swapper's per-thread list; only the domain
    // destructor drains other threads' lists.
  }
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, MultipleIndicesIndependent) {
  HazardDomain domain;
  std::atomic<Node*> a{new Node}, b{new Node};
  Node* pa = domain.protect(a, 0);
  Node* pb = domain.protect(b, 1);
  domain.retire(pa);
  domain.retire(pb);
  domain.clear(0);
  domain.scan_and_free();
  // Only b remains protected.
  EXPECT_EQ(domain.outstanding(), 1u);
  domain.clear_all();
  domain.scan_and_free();
  EXPECT_EQ(domain.outstanding(), 0u);
}

TEST(Hazard, AdaptiveRetirePressureTriggersAutomaticScan) {
  Node::live = 0;
  HazardDomain domain;
  // With one claimed slot the adaptive threshold bottoms out at the floor
  // (64), not Michael's fixed 2 * kTotalSlots * K (~1800) -- a
  // single-thread workload must not be able to pile up thousands of nodes
  // before the first automatic scan.
  for (int i = 0; i < 200; ++i) domain.retire(new Node);
  EXPECT_LT(domain.outstanding(), 200u);
}

TEST(Hazard, RegisteredThreadUsesItsPidSlot) {
  // Shared slot layout with EbrDomain: a registered thread's slot IS its
  // pid, so one Pool keyed by these indices serves both substrates.
  HazardDomain domain;
  {
    exec::ScopedPid pid(7);
    EXPECT_EQ(domain.thread_slot(), 7u);
  }
  // Without a pid the thread falls back to a sticky anonymous slot above
  // the pid range.
  std::uint32_t anon = domain.thread_slot();
  EXPECT_GE(anon, kPidSlots);
  EXPECT_LT(anon, kTotalSlots);
  EXPECT_EQ(domain.thread_slot(), anon);  // sticky
}

TEST(Hazard, SetPlusCallerValidationProtects) {
  // The raw set() + caller-side validation style used by the snapshot's
  // protect_component: publish, re-read, and the pointer is protected.
  Node::live = 0;
  HazardDomain domain;
  std::atomic<Node*> src{new Node};
  Node* p = src.load();
  domain.set(0, p);
  ASSERT_EQ(src.load(), p);  // validation succeeded: p is protected
  domain.retire(p);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 1);
  domain.clear(0);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, RecycleCallbackReceivesRetiringSlot) {
  // The slot-carrying retire_raw contract reclaim::Pool depends on: the
  // callback is told WHICH per-thread list the node belongs to, whether it
  // runs from a scan on the retiring thread or from the destructor on a
  // thread that owns no slot.
  static std::vector<std::uint32_t> seen_slots;
  seen_slots.clear();
  Node* a = new Node;
  Node* b = new Node;
  {
    HazardDomain domain;
    std::uint32_t my_slot;
    {
      exec::ScopedPid pid(3);
      my_slot = domain.thread_slot();
      auto fn = [](void* p, void*, std::uint32_t slot) {
        seen_slots.push_back(slot);
        delete static_cast<Node*>(p);
      };
      domain.retire_raw(a, nullptr, fn);
      domain.retire_raw(b, nullptr, fn);
      domain.scan_and_free();  // frees both from slot 3, on the owner
    }
    EXPECT_EQ(my_slot, 3u);
  }
  ASSERT_EQ(seen_slots.size(), 2u);
  EXPECT_EQ(seen_slots[0], 3u);
  EXPECT_EQ(seen_slots[1], 3u);
  EXPECT_EQ(Node::live.load(), 0);
}

TEST(Hazard, ParkedReaderBlocksOnlyProtectedRecords) {
  // THE property that distinguishes hp from EBR, and the reason the
  // registry grew a reclaim=hp plane: a reader parked on specific records
  // does not stall reclamation of anything else.  Under EBR the same
  // parked reader would pin its entry epoch and freeze every later
  // retirement in the domain.
  Node::live = 0;
  HazardDomain domain;
  std::atomic<Node*> held{new Node};
  Node* parked = domain.protect(held, 0);  // the parked reader's record

  // A writer churns through many other records while the reader stays
  // parked; every one of them must be reclaimed promptly.
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) domain.retire(new Node);
    domain.scan_and_free();
  });
  writer.join();

  // Everything except the one protected record is gone.
  EXPECT_EQ(domain.outstanding(), 0u);
  EXPECT_EQ(Node::live.load(), 1);

  domain.retire(parked);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 1);  // still parked
  domain.clear(0);
  domain.scan_and_free();
  EXPECT_EQ(Node::live.load(), 0);
}

}  // namespace
}  // namespace psnap::reclaim
