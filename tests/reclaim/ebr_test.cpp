#include "reclaim/ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace psnap::reclaim {
namespace {

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
  int payload = 0;
};
std::atomic<int> Tracked::live{0};

TEST(Ebr, RetiredNodesFreedAfterQuiescence) {
  Tracked::live = 0;
  {
    EbrDomain domain;
    for (int i = 0; i < 10; ++i) {
      domain.retire(new Tracked);
    }
    EXPECT_EQ(domain.retired_count(), 10u);
    // Force several epochs; nothing is pinned so everything reclaims.
    for (int i = 0; i < 5; ++i) domain.try_reclaim();
    EXPECT_EQ(domain.outstanding(), 0u);
    EXPECT_EQ(Tracked::live.load(), 0);
  }
}

TEST(Ebr, DestructorDrainsOutstanding) {
  Tracked::live = 0;
  {
    EbrDomain domain;
    for (int i = 0; i < 7; ++i) domain.retire(new Tracked);
    // No try_reclaim: nodes still outstanding at destruction.
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, PinBlocksReclamation) {
  Tracked::live = 0;
  EbrDomain domain;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    auto guard = domain.pin();
    pinned = true;
    while (!release) std::this_thread::yield();
  });
  while (!pinned) std::this_thread::yield();

  for (int i = 0; i < 10; ++i) domain.retire(new Tracked);
  for (int i = 0; i < 10; ++i) domain.try_reclaim();
  // The reader pinned an epoch before the retirements; the retired nodes
  // must not all be freed while it remains pinned.
  EXPECT_GT(domain.outstanding(), 0u);

  release = true;
  reader.join();
  for (int i = 0; i < 5; ++i) domain.try_reclaim();
  EXPECT_EQ(domain.outstanding(), 0u);
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, GuardIsReentrant) {
  EbrDomain domain;
  auto outer = domain.pin();
  {
    auto inner = domain.pin();  // must not deadlock or double-advance
  }
  // Epoch can still advance after full unpin.
  SUCCEED();
}

TEST(Ebr, EpochAdvancesWhenUnpinned) {
  EbrDomain domain;
  std::uint64_t e0 = domain.global_epoch();
  domain.try_reclaim();
  domain.try_reclaim();
  EXPECT_GT(domain.global_epoch(), e0);
}

TEST(Ebr, EpochFrozenWhilePinnedBehind) {
  EbrDomain domain;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    auto guard = domain.pin();
    pinned = true;
    while (!release) std::this_thread::yield();
  });
  while (!pinned) std::this_thread::yield();
  // One advance may still happen (the reader pinned the current epoch and
  // the rule only requires all pinned epochs to equal the global); after
  // that the global is ahead of the pinned epoch and must freeze.
  domain.try_reclaim();
  std::uint64_t e1 = domain.global_epoch();
  for (int i = 0; i < 5; ++i) domain.try_reclaim();
  EXPECT_EQ(domain.global_epoch(), e1);
  release = true;
  reader.join();
}

TEST(Ebr, StressManyThreads) {
  Tracked::live = 0;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  {
    EbrDomain domain;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&domain] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          auto guard = domain.pin();
          domain.retire(new Tracked);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(domain.retired_count(),
              std::uint64_t(kThreads) * kOpsPerThread);
  }
  // Domain destruction frees everything that was still outstanding.
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, ManyDomainsIndependent) {
  Tracked::live = 0;
  std::vector<std::unique_ptr<EbrDomain>> domains;
  for (int d = 0; d < 20; ++d) {
    domains.push_back(std::make_unique<EbrDomain>());
    domains.back()->retire(new Tracked);
  }
  domains.clear();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(EbrDeathTest, DestroyWhilePinnedAborts) {
  EXPECT_DEATH(
      {
        auto* domain = new EbrDomain;
        auto guard = domain->pin();
        delete domain;
      },
      "pinned");
}

}  // namespace
}  // namespace psnap::reclaim
