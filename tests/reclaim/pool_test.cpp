// reclaim::Pool -- the EBR-backed typed free list.
//
// Three properties are load-bearing for the allocation-free update path:
//
//   1. Grace periods still apply: a recycled node must not become
//      acquirable while any thread could hold a pre-retire reference
//      (otherwise the snapshot algorithms' pointer-identity reasoning --
//      "a record observed while pinned is never reused under my feet" --
//      would break, the classic ABA).
//   2. put_local really is immediate: unpublished nodes (CAS-failure path)
//      skip the grace period, because no other thread ever saw them.
//   3. Nodes keep their contents between lives (that is the whole point:
//      the embedded view vector's capacity survives), and everything is
//      freed exactly once at shutdown.
//
// The sim-scheduler section is the ABA regression: it drives Figure 3
// through interleavings where records retire, recycle, and republish while
// scans are mid-collect, and checks linearizability plus that reuse
// actually happened (so the test cannot silently pass by never pooling).
#include "reclaim/pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/cas_psnap.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "reclaim/ebr.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "verify/lin_checker.h"
#include "verify/recording.h"

namespace psnap::reclaim {
namespace {

struct Node {
  std::vector<std::uint64_t> payload;
};

TEST(PoolTest, RecycleWaitsForTheGracePeriod) {
  EbrDomain domain;
  Pool<Node> pool;
  Node* node = pool.acquire(domain).release();
  EXPECT_EQ(pool.fresh_count(), 1u);

  {
    // A pinned reader: the node must not resurface while the pin could
    // still dereference it.
    auto guard = domain.pin();
    pool.recycle(domain, node);
    domain.try_reclaim();
    domain.try_reclaim();
    EXPECT_EQ(pool.pooled_count(), 0u);
  }
  // Unpinned: two epoch advances later the node is reusable.
  domain.try_reclaim();
  domain.try_reclaim();
  domain.try_reclaim();
  EXPECT_EQ(pool.pooled_count(), 1u);
  Node* again = pool.acquire(domain).release();
  EXPECT_EQ(again, node);
  EXPECT_EQ(pool.reused_count(), 1u);
  pool.put_local(domain, again);  // pool owns it at destruction
}

TEST(PoolTest, PutLocalSkipsTheGracePeriodAndKeepsContents) {
  EbrDomain domain;
  Pool<Node> pool;
  Node* node = pool.acquire(domain).release();
  node->payload.assign(100, 7);
  std::size_t capacity = node->payload.capacity();

  pool.put_local(domain, node);
  EXPECT_EQ(pool.pooled_count(), 1u);
  Node* again = pool.acquire(domain).release();
  EXPECT_EQ(again, node);
  // Contents survive recycling -- callers overwrite, and vector capacity
  // is exactly what they want to inherit.
  EXPECT_GE(again->payload.capacity(), capacity);
  pool.put_local(domain, again);
}

TEST(PoolTest, DomainDestructionFlushesRetiredNodesIntoThePool) {
  Pool<Node> pool;
  {
    EbrDomain domain;
    for (int i = 0; i < 5; ++i) {
      pool.recycle(domain, pool.acquire(domain).release());
    }
    // No epoch advance was forced; ~EbrDomain must flush them.
  }
  EXPECT_EQ(pool.pooled_count(), 5u);
  // ~Pool deletes them (ASan would catch a leak or double free here).
}

// ---------------------------------------------------------------------------
// ABA regression under the deterministic scheduler.
// ---------------------------------------------------------------------------

// Two updaters hammering ONE component of Figure 3 force CAS failures --
// whose records return to the pool immediately via put_local and get
// REUSED by that process's next update -- while a scanner's collects
// interleave at every step.  If pooled reuse could resurrect a pointer a
// pinned scan still reasons about, the borrowed-view/condition-(2) logic
// or the linearizability check would trip.
TEST(PoolAbaSimTest, CasFailureRecyclingStaysLinearizable) {
  constexpr std::uint32_t kM = 2;
  std::uint64_t reused_total = 0;
  runtime::explore_random(
      [&](std::uint64_t seed) {
        auto snap = std::make_unique<core::CasPartialSnapshot>(kM, 3);
        verify::History history;
        verify::RecordingSnapshot recorded(*snap, history);

        runtime::SimScheduler::Options options;
        options.policy = runtime::SimScheduler::Policy::kRandom;
        options.seed = seed;
        runtime::SimScheduler sched(options);
        sched.add_process([&] {
          for (std::uint64_t k = 1; k <= 3; ++k) recorded.update(0, 10 + k);
        });
        sched.add_process([&] {
          for (std::uint64_t k = 1; k <= 3; ++k) recorded.update(0, 20 + k);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
          recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
        });
        sched.run();

        verify::LinCheckOptions lin;
        lin.num_components = kM;
        auto outcome =
            verify::check_snapshot_linearizable(history.operations(), lin);
        ASSERT_EQ(outcome.result, verify::LinResult::kLinearizable)
            << outcome.diagnosis << "\nhistory:\n"
            << history.to_string();
        reused_total += snap->record_pool().reused_count();
      },
      /*runs=*/120);
  // Across 120 random schedules, contention MUST have produced CAS
  // failures whose records were recycled and reused; a zero here means the
  // pool is not actually pooling and the test lost its teeth.
  EXPECT_GT(reused_total, 0u);
}

// Long-haul churn: enough updates that records flow through full EBR
// grace periods (retire threshold 64) and recycle many times over, with a
// scanner running mid-stream.  Values are checked against the sequential
// outcome at the end; the per-operation invariants (collect bounds,
// view-coverage asserts) run throughout.
TEST(PoolAbaSimTest, GracePeriodRecyclingUnderChurn) {
  constexpr std::uint32_t kM = 2;
  constexpr std::uint64_t kUpdates = 300;
  auto snap = std::make_unique<core::CasPartialSnapshot>(kM, 3);

  runtime::SimScheduler::Options options;
  options.policy = runtime::SimScheduler::Policy::kRandom;
  options.seed = 42;
  runtime::SimScheduler sched(options);
  sched.add_process([&] {
    for (std::uint64_t k = 1; k <= kUpdates; ++k) snap->update(0, k);
  });
  sched.add_process([&] {
    for (std::uint64_t k = 1; k <= kUpdates; ++k) {
      snap->update(1, 1000 + k);
    }
  });
  std::optional<std::vector<std::uint64_t>> mid_scan;
  sched.add_process([&] {
    std::vector<std::uint64_t> out;
    for (int s = 0; s < 20; ++s) {
      snap->scan(std::vector<std::uint32_t>{0, 1}, out);
      // Scanned values never run backwards (each component's published
      // values are increasing in this scenario).
      if (mid_scan.has_value()) {
        EXPECT_GE(out[0], (*mid_scan)[0]);
        EXPECT_GE(out[1], (*mid_scan)[1]);
      }
      mid_scan = out;
    }
  });
  sched.run();

  exec::ScopedPid pid(0);
  EXPECT_EQ(snap->scan_all(),
            (std::vector<std::uint64_t>{kUpdates, 1000 + kUpdates}));
  // 600 updates against a 64-node retire threshold: grace-period recycling
  // must have fired many times.
  EXPECT_GT(snap->record_pool().reused_count(), 100u);
}

}  // namespace
}  // namespace psnap::reclaim
