// Steady-state updates must not touch the heap.
//
// PR 1 made the scan path allocation-free (scan_alloc_test.cpp); this
// suite closes the other half of the operation surface.  An update used to
// pay one allocation for its Record, one for the record's embedded view
// vector, and -- through EBR -- one deallocation per replaced record.  The
// reclaim::Pool free lists recycle retired Records (and announcement
// IndexSets) with their vector capacity intact, so after warm-up an update
// performs ZERO heap allocations: the record comes from the pool, its view
// is a capacity-reusing copy, and the replaced record goes back to the
// pool after its grace period.
//
// Like scan_alloc_test this is its own binary: it replaces the global
// operator new/delete with the shared counting versions.
//
// Warm-up is what makes "steady state" precise: the pool only starts
// serving once retired records have flowed through an EBR grace period
// (retire threshold 64, two epoch generations), and every reusable buffer
// (retired lists, free lists, ScanContext scratch, view capacity) must
// reach its watermark.  A couple thousand operations covers all of it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cas_psnap.h"
#include "core/op_stats.h"
#include "core/partial_snapshot.h"
#include "core/register_psnap.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/counting_allocator.h"
#include "tests/support/registry_params.h"

namespace psnap::core {
namespace {

using test::g_allocations;

constexpr std::uint32_t kM = 64;
constexpr std::uint32_t kN = 4;

// Runs `updates` round-robin updates and returns how many heap allocations
// they performed in total.
std::uint64_t allocations_during_updates(PartialSnapshot& snap,
                                         int updates) {
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int k = 0; k < updates; ++k) {
    snap.update(static_cast<std::uint32_t>(k % kM), 5000 + k);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

// Drives updates (and a few scans, so announcement machinery is live) far
// past every warm-up watermark: pool fill, EBR retired-list capacity,
// ScanContext scratch, per-record view capacity.
void warm_up(PartialSnapshot& snap) {
  std::vector<std::uint64_t> out;
  const std::vector<std::uint32_t> idx{3, 9, 17, 40};
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < kM; ++i) snap.update(i, 1000 + i);
    snap.scan(idx, out);
  }
  // End on a long pure-update run: the first getSet after the scans'
  // join/leave churn publishes the vacated slots (one interval-list
  // allocation, Figure 3 only), after which updates are steady-state.
  for (int k = 0; k < 512; ++k) {
    snap.update(static_cast<std::uint32_t>(k % kM), 2000 + k);
  }
}

// Every wait-free implementation -- both runtimes -- must reach an
// allocation-free update steady state.
class UpdateAllocTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(UpdateAllocTest, SteadyStateUpdatesAreAllocationFree) {
  exec::ScopedPid pid(0);
  auto snap = test::make_snapshot(*GetParam(), kM, kN);
  warm_up(*snap);
  EXPECT_EQ(allocations_during_updates(*snap, 512), 0u);
  // The updates still publish real data.
  EXPECT_EQ(snap->scan({static_cast<std::uint32_t>(511 % kM)}),
            (std::vector<std::uint64_t>{5000 + 511}));
}

INSTANTIATE_TEST_SUITE_P(
    WaitFreeImplementations, UpdateAllocTest,
    ::testing::ValuesIn(test::snapshot_impls(
        [](const registry::SnapshotInfo& info) { return info.is_wait_free; })),
    test::snapshot_param_name);

// The helping path: with a scanner announced AND active, every update's
// getSet returns it and the embedded scan collects the announced set.
// That whole machinery -- getSet, announcement reads, union building,
// collect buffers, the record's non-empty view -- must also be
// allocation-free in steady state.  Driven through the concrete types
// because joining without scanning needs the active-set accessor.
template <class Snap>
void run_helping_update_test(Snap& snap) {
  {
    // A scan under pid 1 announces {3, 9, 17, 40}; the manual join keeps
    // pid 1 in the active set afterwards, like a scanner parked mid-scan.
    exec::ScopedPid scanner(1);
    std::vector<std::uint64_t> out;
    snap.scan(std::vector<std::uint32_t>{3, 9, 17, 40}, out);
    snap.active_set().join();
  }
  {
    exec::ScopedPid updater(0);
    warm_up(snap);
    EXPECT_EQ(allocations_during_updates(snap, 512), 0u);
    EXPECT_GT(tls_op_stats().getset_size, 0u)
        << "helping path was not exercised";
  }
  {
    exec::ScopedPid scanner(1);
    snap.active_set().leave();
  }
}

TEST(UpdateAllocHelpingTest, CasSnapshotHelpingUpdatesAreAllocationFree) {
  CasPartialSnapshot snap(kM, kN);
  run_helping_update_test(snap);
}

TEST(UpdateAllocHelpingTest,
     CasSnapshotFastHelpingUpdatesAreAllocationFree) {
  CasPartialSnapshotFast snap(kM, kN);
  run_helping_update_test(snap);
}

// The hazard-pointer plane's helping path: hazard publications, the
// validated announcement loop, and protected collects must all reach the
// same allocation-free steady state (retired lists and the per-slot scan
// scratch warm up like EBR's).
TEST(UpdateAllocHelpingTest, CasSnapshotHpHelpingUpdatesAreAllocationFree) {
  CasSnapshotOptions options;
  options.use_hp = true;
  CasPartialSnapshot snap(kM, kN, options, 0);
  run_helping_update_test(snap);
}

TEST(UpdateAllocHelpingTest,
     CasSnapshotShardedHelpingUpdatesAreAllocationFree) {
  CasSnapshotOptions options;
  options.reclaim_shards = 4;
  CasPartialSnapshot snap(kM, kN, options, 0);
  run_helping_update_test(snap);
}

TEST(UpdateAllocHelpingTest,
     RegisterSnapshotHelpingUpdatesAreAllocationFree) {
  RegisterPartialSnapshot snap(kM, kN);
  run_helping_update_test(snap);
}

TEST(UpdateAllocHelpingTest,
     RegisterSnapshotFastHelpingUpdatesAreAllocationFree) {
  RegisterPartialSnapshotFast snap(kM, kN);
  run_helping_update_test(snap);
}

// Growth: after add_components, updates across the enlarged range must
// return to the allocation-free steady state (the grow itself and the
// first lap over the new components are the one-time warm-up: fresh
// initial records, a possible segment install, first retirements flowing
// through the grace period into the pool).
TEST(UpdateAllocTestExtras, GrowthKeepsSteadyStateUpdatesAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"fig3_cas", "fig1_register", "fig3_cas_fast", "fig1_register_fast",
        "full_snapshot", "fig3_cas:reclaim=hp", "fig3_cas:shards=4"}) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    warm_up(*snap);
    std::uint32_t first = snap->add_components(16);
    EXPECT_EQ(first, kM) << spec;
    const std::uint32_t grown = kM + 16;
    // Re-warm over the full grown range: the full-snapshot baseline's
    // views are larger now, so its pooled records must regrow their
    // capacity once; the local algorithms' records are shape-independent.
    for (int k = 0; k < 1024; ++k) {
      snap->update(static_cast<std::uint32_t>(k % grown), 3000 + k);
    }
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int k = 0; k < 512; ++k) {
      snap->update(static_cast<std::uint32_t>(k % grown), 5000 + k);
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << spec;
    EXPECT_EQ(snap->scan({static_cast<std::uint32_t>(511 % grown)}),
              (std::vector<std::uint64_t>{5000 + 511}))
        << spec;
  }
}

// Announcement pooling: scans that keep CHANGING shape used to allocate a
// fresh IndexSet on every re-announcement.  With the announce pool, the
// retired announcements recycle and alternating between shapes reaches an
// allocation-free steady state too.
TEST(UpdateAllocTestExtras, AlternatingScanShapesAreAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"fig3_cas", "fig1_register", "fig3_cas_fast", "fig1_register_fast",
        "fig3_cas:reclaim=hp", "fig3_cas:shards=4"}) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    const std::vector<std::uint32_t> a{3, 9, 17, 40};
    const std::vector<std::uint32_t> b{5, 21};
    std::vector<std::uint64_t> out;
    for (std::uint32_t i = 0; i < kM; ++i) snap->update(i, 1000 + i);
    // Warm-up: several hundred announcement round-trips flow through the
    // EBR grace period into the announce pool.  The total join count (900
    // scans) stays inside the Figure-2 slot array's first 1024-slot
    // segment, so its amortized growth cannot fire mid-measurement (same
    // budgeting as scan_alloc_test).
    for (int k = 0; k < 300; ++k) {
      snap->scan(a, out);
      snap->scan(b, out);
    }
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int k = 0; k < 150; ++k) {
      snap->scan(a, out);
      snap->scan(b, out);
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << spec;
  }
}

}  // namespace
}  // namespace psnap::core
