// Native-thread stress: dedicated writers per component with increasing
// values, concurrent scanners, the sound real-time checker as oracle.
// Catches torn scans, lost updates and memory bugs at real concurrency
// levels; the exact linearizability checking happens in snapshot_sim_test.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>

#include "baseline/double_collect.h"
#include "baseline/full_snapshot.h"
#include "baseline/lock_snapshot.h"
#include "baseline/seqlock_snapshot.h"
#include "common/timing.h"
#include "core/cas_psnap.h"
#include "core/register_psnap.h"
#include "exec/exec.h"
#include "verify/realtime_checker.h"

namespace psnap::core {
namespace {

using verify::RealtimeChecker;

using Factory = std::function<std::unique_ptr<PartialSnapshot>(
    std::uint32_t m, std::uint32_t n)>;

struct Impl {
  std::string label;
  Factory make;
};

Impl all_impls[] = {
    {"fig1_register",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<RegisterPartialSnapshot>(m, n);
     }},
    {"fig3_cas",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<CasPartialSnapshot>(m, n);
     }},
    {"fig3_write_ablation",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       CasPartialSnapshot::Options options;
       options.use_cas = false;
       return std::make_unique<CasPartialSnapshot>(m, n, options);
     }},
    {"full_snapshot",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::FullSnapshot>(m, n);
     }},
    {"double_collect",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::DoubleCollectSnapshot>(m, n);
     }},
    {"lock",
     [](std::uint32_t m, std::uint32_t) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::LockSnapshot>(m);
     }},
    {"seqlock",
     [](std::uint32_t m, std::uint32_t) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::SeqlockSnapshot>(m);
     }},
};

class SnapshotStressTest : public ::testing::TestWithParam<Impl> {};

TEST_P(SnapshotStressTest, DedicatedWritersRealtimeConsistency) {
  constexpr std::uint32_t kComponents = 4;
  constexpr std::uint32_t kScanners = 2;
  constexpr std::uint64_t kWritesPerComponent = 3000;
  constexpr std::uint64_t kScansPerScanner = 3000;

  auto snap = GetParam().make(kComponents, kComponents + kScanners);
  RealtimeChecker checker(kComponents);
  std::vector<std::vector<RealtimeChecker::ScanObservation>> observations(
      kScanners);

  std::vector<std::thread> threads;
  // One dedicated writer per component, values 1,2,3,...
  for (std::uint32_t c = 0; c < kComponents; ++c) {
    threads.emplace_back([&, c] {
      exec::ScopedPid pid(c);
      for (std::uint64_t k = 1; k <= kWritesPerComponent; ++k) {
        checker.record_write_begin(c, k, now_nanos());
        snap->update(c, k);
        checker.record_write_end(c, k, now_nanos());
      }
    });
  }
  // Scanners over random-ish fixed pairs, recording observations.
  for (std::uint32_t s = 0; s < kScanners; ++s) {
    threads.emplace_back([&, s] {
      exec::ScopedPid pid(kComponents + s);
      std::vector<std::uint32_t> indices{s % kComponents,
                                         (s + 2) % kComponents};
      std::sort(indices.begin(), indices.end());
      std::vector<std::uint64_t> out;
      auto& obs = observations[s];
      obs.reserve(kScansPerScanner);
      for (std::uint64_t i = 0; i < kScansPerScanner; ++i) {
        RealtimeChecker::ScanObservation o;
        o.invoke_nanos = now_nanos();
        snap->scan(indices, out);
        o.respond_nanos = now_nanos();
        o.indices = indices;
        o.values = out;
        obs.push_back(std::move(o));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (auto& obs : observations) {
    auto outcome = checker.check(obs);
    EXPECT_TRUE(outcome.ok) << GetParam().label << ": " << outcome.diagnosis;
  }
}

TEST_P(SnapshotStressTest, PerComponentMonotonicity) {
  // With a single writer per component producing increasing values, any
  // one scanner must observe non-decreasing values per component.
  constexpr std::uint32_t kComponents = 2;
  constexpr std::uint64_t kWrites = 20000;
  auto snap = GetParam().make(kComponents, 3);

  std::thread writer([&] {
    exec::ScopedPid pid(0);
    for (std::uint64_t k = 1; k <= kWrites; ++k) snap->update(0, k);
  });
  std::thread scanner([&] {
    exec::ScopedPid pid(2);
    std::vector<std::uint32_t> indices{0, 1};
    std::vector<std::uint64_t> out;
    std::uint64_t last = 0;
    for (int i = 0; i < 5000; ++i) {
      snap->scan(indices, out);
      ASSERT_GE(out[0], last) << GetParam().label;
      ASSERT_LE(out[0], kWrites);
      ASSERT_EQ(out[1], 0u);  // untouched component stays at initial
      last = out[0];
    }
  });
  writer.join();
  scanner.join();
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, SnapshotStressTest,
                         ::testing::ValuesIn(all_impls),
                         [](const ::testing::TestParamInfo<Impl>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace psnap::core
