// Native-thread stress: dedicated writers per component with increasing
// values, concurrent scanners, the sound real-time checker as oracle.
// Catches torn scans, lost updates and memory bugs at real concurrency
// levels; the exact linearizability checking happens in snapshot_sim_test.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/timing.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/registry_params.h"
#include "verify/realtime_checker.h"

namespace psnap::core {
namespace {

using verify::RealtimeChecker;

class SnapshotStressTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(SnapshotStressTest, DedicatedWritersRealtimeConsistency) {
  constexpr std::uint32_t kComponents = 4;
  constexpr std::uint32_t kScanners = 2;
  constexpr std::uint64_t kWritesPerComponent = 3000;
  constexpr std::uint64_t kScansPerScanner = 3000;

  auto snap =
      test::make_snapshot(*GetParam(), kComponents, kComponents + kScanners);
  RealtimeChecker checker(kComponents);
  std::vector<std::vector<RealtimeChecker::ScanObservation>> observations(
      kScanners);

  std::vector<std::thread> threads;
  // One dedicated writer per component, values 1,2,3,...
  for (std::uint32_t c = 0; c < kComponents; ++c) {
    threads.emplace_back([&, c] {
      exec::ScopedPid pid(c);
      for (std::uint64_t k = 1; k <= kWritesPerComponent; ++k) {
        checker.record_write_begin(c, k, now_nanos());
        snap->update(c, k);
        checker.record_write_end(c, k, now_nanos());
      }
    });
  }
  // Scanners over random-ish fixed pairs, recording observations.
  for (std::uint32_t s = 0; s < kScanners; ++s) {
    threads.emplace_back([&, s] {
      exec::ScopedPid pid(kComponents + s);
      std::vector<std::uint32_t> indices{s % kComponents,
                                         (s + 2) % kComponents};
      std::sort(indices.begin(), indices.end());
      std::vector<std::uint64_t> out;
      auto& obs = observations[s];
      obs.reserve(kScansPerScanner);
      for (std::uint64_t i = 0; i < kScansPerScanner; ++i) {
        RealtimeChecker::ScanObservation o;
        o.invoke_nanos = now_nanos();
        snap->scan(indices, out);
        o.respond_nanos = now_nanos();
        o.indices = indices;
        o.values = out;
        obs.push_back(std::move(o));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (auto& obs : observations) {
    auto outcome = checker.check(obs);
    EXPECT_TRUE(outcome.ok) << GetParam()->name << ": " << outcome.diagnosis;
  }
}

TEST_P(SnapshotStressTest, PerComponentMonotonicity) {
  // With a single writer per component producing increasing values, any
  // one scanner must observe non-decreasing values per component.
  constexpr std::uint32_t kComponents = 2;
  constexpr std::uint64_t kWrites = 20000;
  auto snap = test::make_snapshot(*GetParam(), kComponents, 3);

  std::thread writer([&] {
    exec::ScopedPid pid(0);
    for (std::uint64_t k = 1; k <= kWrites; ++k) snap->update(0, k);
  });
  std::thread scanner([&] {
    exec::ScopedPid pid(2);
    std::vector<std::uint32_t> indices{0, 1};
    std::vector<std::uint64_t> out;
    std::uint64_t last = 0;
    for (int i = 0; i < 5000; ++i) {
      snap->scan(indices, out);
      ASSERT_GE(out[0], last) << GetParam()->name;
      ASSERT_LE(out[0], kWrites);
      ASSERT_EQ(out[1], 0u);  // untouched component stays at initial
      last = out[0];
    }
  });
  writer.join();
  scanner.join();
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, SnapshotStressTest,
                         ::testing::ValuesIn(test::snapshot_impls()),
                         test::snapshot_param_name);

}  // namespace
}  // namespace psnap::core
