// Steady-state VERSIONED (value=versioned) operations must not touch the
// heap, and quiescent chains must stay trimmed.
//
// The versioned read plane (primitives/version_chain.h) appends one
// version node per update and walks chains per scan; this suite proves
// the two lifecycle claims ISSUE 6 makes about it:
//
//   * zero steady-state allocations: after warm-up, every update's node
//     comes from the Pool (the node retired by the lazy chain trim
//     returns through EBR with its storage intact -- acquire 1 / retire 1
//     per update, balanced), and every scan re-fills the caller's buffer
//     in place;
//   * chain-length boundedness: the lazy trim keeps the unretired set of
//     each chain at {head, head->prev}, and with quiescent readers a
//     scan's chain walk reads the head immediately -- the OpStats
//     chain_nodes oracle reports exactly 1 node walked.
//
// Like its alloc-test siblings this is its own binary: it replaces the
// global operator new/delete with the shared counting versions.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cas_psnap.h"
#include "core/op_stats.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "primitives/value_plane.h"
#include "registry/registry.h"
#include "tests/support/counting_allocator.h"

namespace psnap::core {
namespace {

using test::g_allocations;

constexpr std::uint32_t kM = 64;
constexpr std::uint32_t kN = 4;

const std::vector<std::uint32_t> kIdx{3, 9, 17, 40};

// Every versioned construction route: canned sim-safe entries and
// value=versioned specs, both runtimes, all three host algorithms.
const char* const kVersionedSpecs[] = {
    "fig3_cas_versioned",
    "full_snapshot_versioned",
    "seqlock_versioned",
    "fig3_cas:value=versioned",
    "fig3_cas_fast:value=versioned",
    "full_snapshot:value=versioned",
    "seqlock:value=versioned",
    // The hazard-pointer reclamation plane: same chain lifecycle, pools
    // fed by hazard scans instead of grace periods.
    "fig3_cas_versioned_hp",
    "fig3_cas:value=versioned,reclaim=hp",
};

// Drives updates and scans far past every warm-up watermark: pool fill,
// EBR retired-list capacity, chain trims, and the caller-side scan
// buffer's capacity.
void warm_up(PartialSnapshot& snap) {
  std::vector<std::uint64_t> out;
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < kM; ++i) snap.update(i, i);
    snap.scan(kIdx, out);
  }
  for (int k = 0; k < 512; ++k) {
    snap.update(static_cast<std::uint32_t>(k % kM), 100 + k);
  }
}

TEST(VersionAllocTest, SteadyStateVersionedUpdatesAreAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec : kVersionedSpecs) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    ASSERT_EQ(snap->value_plane(), "versioned") << spec;
    warm_up(*snap);
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int k = 0; k < 512; ++k) {
      snap->update(static_cast<std::uint32_t>(k % kM), 5000 + k);
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << spec;
    // The updates still publish real data through the chains.
    std::vector<std::uint64_t> out;
    const std::vector<std::uint32_t> last{511 % kM};
    snap->scan(last, out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{5000 + 511})) << spec;
  }
}

TEST(VersionAllocTest, SteadyStateVersionedScansAreAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec : kVersionedSpecs) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    warm_up(*snap);
    std::vector<std::uint64_t> out;
    for (int k = 0; k < 64; ++k) snap->scan(kIdx, out);
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int k = 0; k < 256; ++k) snap->scan(kIdx, out);
    for (int k = 0; k < 256; ++k) snap->scan_versioned(kIdx, out);
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << spec;
  }
}

// The quiescent-reader chain-length oracle: every update self-stamps
// before returning, so a subsequent scan's epoch covers every published
// stamp and the chain walk must stop at the head -- chain_nodes == 1, on
// every component, no matter how many updates ran.  (Anything larger
// would mean trims are lagging or stamps are leaking past the camera.)
TEST(VersionChainTest, QuiescentScansWalkExactlyOneNode) {
  exec::ScopedPid pid(0);
  for (const char* spec : kVersionedSpecs) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    std::vector<std::uint64_t> out;
    std::vector<std::uint32_t> all(kM);
    for (std::uint32_t i = 0; i < kM; ++i) all[i] = i;
    for (int round = 0; round < 16; ++round) {
      for (std::uint32_t i = 0; i < kM; ++i) {
        snap->update(i, round * kM + i);
      }
      snap->scan(all, out);
      EXPECT_EQ(tls_op_stats().chain_nodes, 1u) << spec;
      for (std::uint32_t i = 0; i < kM; ++i) {
        EXPECT_EQ(out[i], static_cast<std::uint64_t>(round) * kM + i) << spec;
      }
    }
  }
}

// Per-thread epochs are strictly increasing (each scan buys a fresh
// camera tick), and a value stamped at epoch e stays visible to every
// later scan.
TEST(VersionChainTest, ScanEpochsStrictlyIncrease) {
  exec::ScopedPid pid(0);
  for (const char* spec : kVersionedSpecs) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    std::vector<std::uint64_t> out;
    std::uint64_t prev_epoch = 0;
    bool first = true;
    for (int k = 0; k < 32; ++k) {
      snap->update(static_cast<std::uint32_t>(k % kM), 7000 + k);
      std::uint64_t epoch = snap->scan_versioned(kIdx, out);
      EXPECT_EQ(tls_op_stats().epoch, epoch) << spec;
      if (!first) {
        EXPECT_GT(epoch, prev_epoch) << spec;
      }
      prev_epoch = epoch;
      first = false;
    }
  }
}

// The non-versioned planes must reject scan_versioned loudly (there is no
// camera to linearize against), naming the requested plane in the error.
TEST(VersionChainTest, NonVersionedPlanesRejectScanVersioned) {
  exec::ScopedPid pid(0);
  for (const char* spec : {"fig3_cas", "full_snapshot", "seqlock",
                           "fig1_register", "double_collect"}) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    std::vector<std::uint64_t> out;
    EXPECT_THROW(snap->scan_versioned(kIdx, out), std::logic_error) << spec;
  }
}

// Pool observability: steady-state updates must be RECYCLING nodes (the
// trim feeds the pool through EBR), not silently heap-feeding -- the
// counting allocator above proves "no heap", this proves "yes pool".
TEST(VersionChainTest, TrimmedNodesRecycleThroughThePool) {
  exec::ScopedPid pid(0);
  CasPartialSnapshotVersioned snap(kM, kN);
  warm_up(snap);
  std::uint64_t reused_before = snap.record_pool().reused_count();
  for (int k = 0; k < 512; ++k) {
    snap.update(static_cast<std::uint32_t>(k % kM), 9000 + k);
  }
  EXPECT_GE(snap.record_pool().reused_count(), reused_before + 256)
      << "version nodes are not recycling through the pool";
}

// Same proof on the hazard-pointer plane: the trim retires through the
// hazard domain, whose scans feed the SAME pool banks (the shared slot
// layout in reclaim/slots.h).
TEST(VersionChainTest, TrimmedNodesRecycleThroughThePoolUnderHp) {
  exec::ScopedPid pid(0);
  CasSnapshotOptions options;
  options.use_hp = true;
  CasPartialSnapshotVersioned snap(kM, kN, options, 0);
  warm_up(snap);
  std::uint64_t reused_before = snap.record_pool().reused_count();
  for (int k = 0; k < 512; ++k) {
    snap.update(static_cast<std::uint32_t>(k % kM), 9000 + k);
  }
  EXPECT_GE(snap.record_pool().reused_count(), reused_before + 256)
      << "version nodes are not recycling through the hp-fed pool";
}

}  // namespace
}  // namespace psnap::core
