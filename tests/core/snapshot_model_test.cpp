// Model-based property testing: every implementation, driven by seeded
// random single-process op sequences, must agree operation-for-operation
// with a trivial reference model (a plain vector).  Sequential agreement
// is a necessary condition that exercises index canonicalization, initial
// values, overwrite ordering and view extraction across a much wider input
// space than the hand-written cases; the concurrent guarantees are covered
// by the sim/stress suites.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/registry_params.h"
#include "workload/workload.h"

namespace psnap::core {
namespace {

struct Case {
  std::string label;
  std::uint64_t seed;
  const registry::SnapshotInfo* info;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const registry::SnapshotInfo* info : test::snapshot_impls()) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      cases.push_back(
          Case{info->name + "_s" + std::to_string(seed), seed, info});
    }
  }
  return cases;
}

class SnapshotModelTest : public ::testing::TestWithParam<Case> {};

TEST_P(SnapshotModelTest, AgreesWithReferenceModel) {
  Xoshiro256 rng(GetParam().seed);
  // Random shape per seed.
  const auto m = static_cast<std::uint32_t>(rng.next_in(1, 48));
  auto snap = test::make_snapshot(*GetParam().info, m, 2);
  std::vector<std::uint64_t> model(m, 0);

  exec::ScopedPid pid(0);
  std::vector<std::uint64_t> out;
  for (int op = 0; op < 400; ++op) {
    if (rng.next_bool(0.5)) {
      auto i = static_cast<std::uint32_t>(rng.next_below(m));
      std::uint64_t v = rng.next();
      snap->update(i, v);
      model[i] = v;
    } else {
      // Random subset with duplicates and random order, sometimes empty.
      std::vector<std::uint32_t> indices;
      std::uint64_t r = rng.next_below(std::min<std::uint64_t>(m, 10) + 1);
      for (std::uint64_t j = 0; j < r; ++j) {
        indices.push_back(static_cast<std::uint32_t>(rng.next_below(m)));
      }
      snap->scan(indices, out);
      ASSERT_EQ(out.size(), indices.size());
      for (std::size_t j = 0; j < indices.size(); ++j) {
        ASSERT_EQ(out[j], model[indices[j]])
            << "op " << op << " component " << indices[j];
      }
    }
  }
  // Final full agreement.
  ASSERT_EQ(snap->scan_all(), model);
}

INSTANTIATE_TEST_SUITE_P(AllImplsAllSeeds, SnapshotModelTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.label;
                         });

// Alternating-pid variant: the same sequential agreement but rotating the
// acting process, exercising multi-writer counters and per-process state.
class SnapshotModelMultiPidTest : public ::testing::TestWithParam<Case> {};

TEST_P(SnapshotModelMultiPidTest, AgreesWithReferenceModel) {
  Xoshiro256 rng(GetParam().seed * 7919);
  const auto m = static_cast<std::uint32_t>(rng.next_in(2, 24));
  constexpr std::uint32_t kPids = 3;
  auto snap = test::make_snapshot(*GetParam().info, m, kPids);
  std::vector<std::uint64_t> model(m, 0);

  std::vector<std::uint64_t> out;
  for (int op = 0; op < 300; ++op) {
    auto acting = static_cast<std::uint32_t>(rng.next_below(kPids));
    exec::ScopedPid pid(acting);
    if (rng.next_bool(0.5)) {
      auto i = static_cast<std::uint32_t>(rng.next_below(m));
      std::uint64_t v = rng.next();
      snap->update(i, v);
      model[i] = v;
    } else {
      auto r = static_cast<std::uint32_t>(rng.next_in(1, std::min(m, 6u)));
      auto indices = rng.sample_without_replacement(m, r);
      snap->scan(indices, out);
      for (std::size_t j = 0; j < indices.size(); ++j) {
        ASSERT_EQ(out[j], model[indices[j]]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplsAllSeeds, SnapshotModelMultiPidTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace psnap::core
