// Model-based property testing: every implementation, driven by seeded
// random single-process op sequences, must agree operation-for-operation
// with a trivial reference model (a plain vector).  Sequential agreement
// is a necessary condition that exercises index canonicalization, initial
// values, overwrite ordering and view extraction across a much wider input
// space than the hand-written cases; the concurrent guarantees are covered
// by the sim/stress suites.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baseline/double_collect.h"
#include "baseline/full_snapshot.h"
#include "baseline/lock_snapshot.h"
#include "baseline/seqlock_snapshot.h"
#include "common/rng.h"
#include "core/cas_psnap.h"
#include "core/partial_snapshot.h"
#include "core/register_psnap.h"
#include "exec/exec.h"
#include "workload/workload.h"

namespace psnap::core {
namespace {

using Factory = std::function<std::unique_ptr<PartialSnapshot>(
    std::uint32_t m, std::uint32_t n)>;

struct Case {
  std::string label;
  std::uint64_t seed;
  Factory make;
};

std::vector<Case> make_cases() {
  struct Base {
    const char* label;
    Factory make;
  };
  const Base bases[] = {
      {"fig1",
       [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
         return std::make_unique<RegisterPartialSnapshot>(m, n);
       }},
      {"fig3",
       [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
         return std::make_unique<CasPartialSnapshot>(m, n);
       }},
      {"fig3w",
       [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
         CasPartialSnapshot::Options options;
         options.use_cas = false;
         return std::make_unique<CasPartialSnapshot>(m, n, options);
       }},
      {"full",
       [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
         return std::make_unique<baseline::FullSnapshot>(m, n);
       }},
      {"dcoll",
       [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
         return std::make_unique<baseline::DoubleCollectSnapshot>(m, n);
       }},
      {"lock",
       [](std::uint32_t m, std::uint32_t) -> std::unique_ptr<PartialSnapshot> {
         return std::make_unique<baseline::LockSnapshot>(m);
       }},
      {"seqlock",
       [](std::uint32_t m, std::uint32_t) -> std::unique_ptr<PartialSnapshot> {
         return std::make_unique<baseline::SeqlockSnapshot>(m);
       }},
  };
  std::vector<Case> cases;
  for (const Base& base : bases) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      cases.push_back(Case{base.label + std::string("_s") +
                               std::to_string(seed),
                           seed, base.make});
    }
  }
  return cases;
}

class SnapshotModelTest : public ::testing::TestWithParam<Case> {};

TEST_P(SnapshotModelTest, AgreesWithReferenceModel) {
  Xoshiro256 rng(GetParam().seed);
  // Random shape per seed.
  const auto m = static_cast<std::uint32_t>(rng.next_in(1, 48));
  auto snap = GetParam().make(m, 2);
  std::vector<std::uint64_t> model(m, 0);

  exec::ScopedPid pid(0);
  std::vector<std::uint64_t> out;
  for (int op = 0; op < 400; ++op) {
    if (rng.next_bool(0.5)) {
      auto i = static_cast<std::uint32_t>(rng.next_below(m));
      std::uint64_t v = rng.next();
      snap->update(i, v);
      model[i] = v;
    } else {
      // Random subset with duplicates and random order, sometimes empty.
      std::vector<std::uint32_t> indices;
      std::uint64_t r = rng.next_below(std::min<std::uint64_t>(m, 10) + 1);
      for (std::uint64_t j = 0; j < r; ++j) {
        indices.push_back(static_cast<std::uint32_t>(rng.next_below(m)));
      }
      snap->scan(indices, out);
      ASSERT_EQ(out.size(), indices.size());
      for (std::size_t j = 0; j < indices.size(); ++j) {
        ASSERT_EQ(out[j], model[indices[j]])
            << "op " << op << " component " << indices[j];
      }
    }
  }
  // Final full agreement.
  ASSERT_EQ(snap->scan_all(), model);
}

INSTANTIATE_TEST_SUITE_P(AllImplsAllSeeds, SnapshotModelTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.label;
                         });

// Alternating-pid variant: the same sequential agreement but rotating the
// acting process, exercising multi-writer counters and per-process state.
class SnapshotModelMultiPidTest : public ::testing::TestWithParam<Case> {};

TEST_P(SnapshotModelMultiPidTest, AgreesWithReferenceModel) {
  Xoshiro256 rng(GetParam().seed * 7919);
  const auto m = static_cast<std::uint32_t>(rng.next_in(2, 24));
  constexpr std::uint32_t kPids = 3;
  auto snap = GetParam().make(m, kPids);
  std::vector<std::uint64_t> model(m, 0);

  std::vector<std::uint64_t> out;
  for (int op = 0; op < 300; ++op) {
    auto acting = static_cast<std::uint32_t>(rng.next_below(kPids));
    exec::ScopedPid pid(acting);
    if (rng.next_bool(0.5)) {
      auto i = static_cast<std::uint32_t>(rng.next_below(m));
      std::uint64_t v = rng.next();
      snap->update(i, v);
      model[i] = v;
    } else {
      auto r = static_cast<std::uint32_t>(rng.next_in(1, std::min(m, 6u)));
      auto indices = rng.sample_without_replacement(m, r);
      snap->scan(indices, out);
      for (std::size_t j = 0; j < indices.size(); ++j) {
        ASSERT_EQ(out[j], model[indices[j]]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplsAllSeeds, SnapshotModelMultiPidTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace psnap::core
