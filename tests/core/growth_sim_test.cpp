// Concurrent component growth under the deterministic scheduler.
//
// add_components races scans and updates through systematically explored
// and randomized schedules, for every sim-safe implementation.  The
// specification being checked: a scan that began before a grow may or may
// not observe the enlarged count, but everything it returns must be
// linearizable against the FINAL component count (new components behave as
// if they had always existed at the initial value); concurrent growers get
// disjoint index blocks and the count converges to the sum.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "tests/support/registry_params.h"
#include "verify/lin_checker.h"
#include "verify/recording.h"

namespace psnap::core {
namespace {

using runtime::ExploreOptions;
using runtime::SimScheduler;
using verify::check_snapshot_linearizable;
using verify::History;
using verify::LinCheckOptions;
using verify::LinResult;
using verify::RecordingSnapshot;

std::vector<const registry::SnapshotInfo*> checked_impls() {
  return test::snapshot_impls(
      [](const registry::SnapshotInfo& info) { return info.sim_safe; });
}

void expect_linearizable(const History& history, std::uint32_t m) {
  LinCheckOptions options;
  options.num_components = m;
  auto outcome = check_snapshot_linearizable(history.operations(), options);
  ASSERT_NE(outcome.result, LinResult::kNotLinearizable)
      << outcome.diagnosis << "\nhistory:\n"
      << history.to_string();
  ASSERT_EQ(outcome.result, LinResult::kLinearizable)
      << "checker budget exceeded on:\n"
      << history.to_string();
}

class GrowthSimTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

// Scenario A (DFS): a grower-updater races a scanner.  The scanner first
// scans the original components, then -- if it already observes the grown
// count -- scans a set that includes the new component.  Checked against
// the final count of 3.
TEST_P(GrowthSimTest, GrowRacesScannerDfs) {
  constexpr std::uint32_t kM0 = 2;
  auto stats = runtime::explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        auto snap = test::make_snapshot(*GetParam(), kM0, 2);
        History history;
        RecordingSnapshot recorded(*snap, history);

        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        sched.add_process([&] {
          recorded.update(0, 1);
          std::uint32_t first = recorded.add_components(1);
          EXPECT_EQ(first, kM0);
          recorded.update(first, 5);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
          // num_components is monotone; once the grow is visible the new
          // index is scannable mid-run.
          if (recorded.num_components() >= 3) {
            recorded.scan(std::vector<std::uint32_t>{0, 2}, out);
          }
        });
        auto result = sched.run();
        expect_linearizable(history, 3);
        return result;
      },
      ExploreOptions{.max_schedules = 800});
  EXPECT_TRUE(stats.exhausted || stats.schedules_run >= 100u);
}

// Scenario B (random, heavier): two updaters, one scanner, and a grower
// interleaving two grows; scans chase the current count.
TEST_P(GrowthSimTest, RepeatedGrowthRandomSchedules) {
  constexpr std::uint32_t kM0 = 2;
  runtime::explore_random(
      [&](std::uint64_t seed) {
        auto snap = test::make_snapshot(*GetParam(), kM0, 4);
        History history;
        RecordingSnapshot recorded(*snap, history);

        SimScheduler::Options options;
        options.policy = SimScheduler::Policy::kRandom;
        options.seed = seed;
        SimScheduler sched(options);
        sched.add_process([&] {
          recorded.update(0, 10);
          recorded.update(1, 11);
        });
        sched.add_process([&] {
          std::uint32_t a = recorded.add_components(1);
          recorded.update(a, 100);
          std::uint32_t b = recorded.add_components(1);
          recorded.update(b, 200);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
          std::uint32_t m = recorded.num_components();
          recorded.scan(std::vector<std::uint32_t>{0, m - 1}, out);
        });
        sched.run();
        EXPECT_EQ(recorded.num_components(), kM0 + 2);
        expect_linearizable(history, kM0 + 2);
      },
      /*runs=*/60);
}

// Scenario C: concurrent growers receive disjoint blocks, the count
// converges, and the grown components hold updates written through the
// returned indices.
TEST_P(GrowthSimTest, ConcurrentGrowersGetDisjointBlocks) {
  constexpr std::uint32_t kM0 = 2;
  runtime::explore_random(
      [&](std::uint64_t seed) {
        auto snap = test::make_snapshot(*GetParam(), kM0, 3);
        std::uint32_t first_a = 0, first_b = 0;

        SimScheduler::Options options;
        options.policy = SimScheduler::Policy::kRandom;
        options.seed = seed;
        SimScheduler sched(options);
        sched.add_process([&] {
          first_a = snap->add_components(2);
          snap->update(first_a, 1000);
          snap->update(first_a + 1, 1001);
        });
        sched.add_process([&] {
          first_b = snap->add_components(1);
          snap->update(first_b, 2000);
        });
        sched.run();

        EXPECT_EQ(snap->num_components(), kM0 + 3);
        // Disjoint blocks: one of the two orders, never overlapping.
        EXPECT_TRUE((first_a == kM0 && first_b == kM0 + 2) ||
                    (first_b == kM0 && first_a == kM0 + 1))
            << "first_a=" << first_a << " first_b=" << first_b;

        exec::ScopedPid pid(2);
        EXPECT_EQ(snap->scan({first_a}), (std::vector<std::uint64_t>{1000}));
        EXPECT_EQ(snap->scan({first_a + 1}),
                  (std::vector<std::uint64_t>{1001}));
        EXPECT_EQ(snap->scan({first_b}), (std::vector<std::uint64_t>{2000}));
      },
      /*runs=*/60);
}

INSTANTIATE_TEST_SUITE_P(AllSimSafeImplementations, GrowthSimTest,
                         ::testing::ValuesIn(checked_impls()),
                         test::snapshot_param_name);

}  // namespace
}  // namespace psnap::core
