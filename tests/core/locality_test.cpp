// Locality and wait-freedom: the structural properties Theorems 1 and 3
// promise, asserted directly.
//
//  * Access-set tests: a partial scan must never touch a component register
//    outside its argument set (every R[i] carries its component index as a
//    label; the access logger records which labels each operation hit).
//  * Step-bound tests: scan step counts must not depend on m, and must stay
//    within the theorems' collect bounds even under contention.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "baseline/full_snapshot.h"
#include "core/cas_psnap.h"
#include "core/op_stats.h"
#include "core/register_psnap.h"
#include "exec/exec.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"

namespace psnap::core {
namespace {

std::set<std::uint64_t> labels_touched(const exec::RecordingLogger& logger) {
  std::set<std::uint64_t> out;
  for (const auto& access : logger.accesses()) {
    if (access.label != exec::kNoLabel) out.insert(access.label);
  }
  return out;
}

TEST(Locality, Fig3ScanTouchesOnlyItsComponents) {
  CasPartialSnapshot snap(64, 2);
  exec::ScopedPid pid(0);
  exec::RecordingLogger logger;
  std::vector<std::uint64_t> out;
  {
    exec::ScopedLogger guard(&logger);
    snap.scan(std::vector<std::uint32_t>{3, 17, 40}, out);
  }
  EXPECT_EQ(labels_touched(logger),
            (std::set<std::uint64_t>{3, 17, 40}));
}

TEST(Locality, Fig1ScanTouchesOnlyItsComponents) {
  RegisterPartialSnapshot snap(64, 2);
  exec::ScopedPid pid(0);
  exec::RecordingLogger logger;
  std::vector<std::uint64_t> out;
  {
    exec::ScopedLogger guard(&logger);
    snap.scan(std::vector<std::uint32_t>{5, 60}, out);
  }
  EXPECT_EQ(labels_touched(logger), (std::set<std::uint64_t>{5, 60}));
}

TEST(Locality, FullSnapshotScanTouchesEverything) {
  // The baseline's defining non-locality: even a 1-component scan reads
  // all m registers.
  baseline::FullSnapshot snap(32, 2);
  exec::ScopedPid pid(0);
  exec::RecordingLogger logger;
  std::vector<std::uint64_t> out;
  {
    exec::ScopedLogger guard(&logger);
    snap.scan(std::vector<std::uint32_t>{7}, out);
  }
  EXPECT_EQ(labels_touched(logger).size(), 32u);
}

TEST(Locality, Fig3UpdateTouchesOnlyItsComponentWhenNoScanners) {
  CasPartialSnapshot snap(64, 2);
  exec::ScopedPid pid(0);
  exec::RecordingLogger logger;
  {
    exec::ScopedLogger guard(&logger);
    snap.update(9, 1);
  }
  EXPECT_EQ(labels_touched(logger), (std::set<std::uint64_t>{9}));
}

TEST(Locality, Fig3ScanStepsIndependentOfM) {
  // Same r, wildly different m: uncontended scan step counts must match
  // exactly.  This is the paper's core claim (a *local* implementation).
  std::uint64_t steps_small = 0, steps_large = 0;
  {
    CasPartialSnapshot snap(8, 2);
    exec::ScopedPid pid(0);
    std::vector<std::uint64_t> out;
    exec::ctx().steps.reset();
    snap.scan(std::vector<std::uint32_t>{1, 2, 5}, out);
    steps_small = exec::ctx().steps.total;
  }
  {
    CasPartialSnapshot snap(4096, 2);
    exec::ScopedPid pid(0);
    std::vector<std::uint64_t> out;
    exec::ctx().steps.reset();
    snap.scan(std::vector<std::uint32_t>{1, 2, 5}, out);
    steps_large = exec::ctx().steps.total;
  }
  EXPECT_EQ(steps_small, steps_large);
}

TEST(Locality, FullSnapshotScanStepsGrowWithM) {
  auto steps_for = [](std::uint32_t m) {
    baseline::FullSnapshot snap(m, 2);
    exec::ScopedPid pid(0);
    std::vector<std::uint64_t> out;
    exec::ctx().steps.reset();
    snap.scan(std::vector<std::uint32_t>{0}, out);
    return exec::ctx().steps.total;
  };
  EXPECT_GE(steps_for(256), 8 * steps_for(16));
}

TEST(WaitFreedom, Fig3UncontendedScanCollectBound) {
  // Theorem 3: at most 2r+1 collects; uncontended it is exactly 2.
  CasPartialSnapshot snap(16, 2);
  exec::ScopedPid pid(0);
  std::vector<std::uint64_t> out;
  snap.scan(std::vector<std::uint32_t>{1, 2, 3, 4}, out);
  EXPECT_EQ(tls_op_stats().collects, 2u);
  EXPECT_FALSE(tls_op_stats().borrowed);
}

TEST(WaitFreedom, Fig3ContendedScanWithinTheorem3Bound) {
  // r = 2: every scan must finish within 2r+1 = 5 collects no matter how
  // hard the updaters hammer the scanned components.  (The implementation
  // itself asserts the bound; this test also observes it and drives real
  // contention through it.)
  CasPartialSnapshot snap(4, 6);
  constexpr std::uint32_t kUpdaters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> updaters;
  for (std::uint32_t u = 0; u < kUpdaters; ++u) {
    updaters.emplace_back([&, u] {
      exec::ScopedPid pid(u);
      std::uint64_t k = 0;
      while (!stop) {
        snap.update(u % 2, ++k);  // components 0 and 1 churn constantly
      }
    });
  }
  {
    exec::ScopedPid pid(5);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 3000; ++i) {
      snap.scan(std::vector<std::uint32_t>{0, 1}, out);
      ASSERT_LE(tls_op_stats().collects, 5u);
    }
  }
  stop = true;
  for (auto& t : updaters) t.join();
}

TEST(WaitFreedom, Fig1ContendedScanBoundedByContention) {
  // Theorem 1: O((Cu+1) * r) -- with n processes the implementation
  // asserts collects <= 2n+3 internally; drive it hard and observe
  // everything completes.
  RegisterPartialSnapshot snap(4, 6);
  constexpr std::uint32_t kUpdaters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> updaters;
  for (std::uint32_t u = 0; u < kUpdaters; ++u) {
    updaters.emplace_back([&, u] {
      exec::ScopedPid pid(u);
      std::uint64_t k = 0;
      while (!stop) snap.update(u % 2, ++k);
    });
  }
  {
    exec::ScopedPid pid(5);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 3000; ++i) {
      snap.scan(std::vector<std::uint32_t>{0, 1}, out);
      ASSERT_LE(tls_op_stats().collects, 2u * 6 + 3);
    }
  }
  stop = true;
  for (auto& t : updaters) t.join();
}

TEST(WaitFreedom, Fig3UpdateEmbeddedScanCoversAnnouncedSets) {
  // An update's embedded scan argument set is the union of announced scan
  // sets -- never all of m.  With one scanner announcing {2,3}, a
  // concurrent update must read at most those two components (plus its own
  // target for the CAS).
  CasPartialSnapshot snap(128, 3);
  std::atomic<bool> scanner_in{false};
  std::atomic<bool> done{false};
  std::thread scanner([&] {
    exec::ScopedPid pid(0);
    std::vector<std::uint64_t> out;
    while (!done) {
      scanner_in = true;
      snap.scan(std::vector<std::uint32_t>{2, 3}, out);
    }
  });
  while (!scanner_in) std::this_thread::yield();
  {
    exec::ScopedPid pid(1);
    exec::RecordingLogger logger;
    {
      exec::ScopedLogger guard(&logger);
      snap.update(100, 1);
    }
    auto touched = labels_touched(logger);
    EXPECT_TRUE(touched.count(100));
    for (std::uint64_t label : touched) {
      EXPECT_TRUE(label == 100 || label == 2 || label == 3)
          << "update touched unrelated component " << label;
    }
  }
  done = true;
  scanner.join();
}

TEST(OpStatsTest, UpdateRecordsGetSetSize) {
  // An update whose getSet runs while a scanner is joined must report a
  // non-empty getSet.  Driven under the deterministic scheduler so the
  // overlap is produced by step-level interleaving on any host (native
  // threads on a loaded single-core runner can run all updates between
  // two scans and never observe the membership window).
  std::uint64_t max_getset = 0;
  runtime::explore_random(
      [&](std::uint64_t seed) {
        CasPartialSnapshot snap(8, 2);
        runtime::SimScheduler::Options options;
        options.policy = runtime::SimScheduler::Policy::kRandom;
        options.seed = seed;
        runtime::SimScheduler sched(options);
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          for (int i = 0; i < 4; ++i) {
            snap.scan(std::vector<std::uint32_t>{1}, out);
          }
        });
        sched.add_process([&] {
          for (int i = 0; i < 8; ++i) {
            snap.update(4, 1);
            max_getset = std::max(max_getset, tls_op_stats().getset_size);
          }
        });
        sched.run();
      },
      /*runs=*/50);
  EXPECT_GE(max_getset, 1u);
}

}  // namespace
}  // namespace psnap::core
