// Halting-failure tolerance (paper Section 2: "Processes run at
// arbitrarily varying speeds and may experience halting failures").
//
// The scheduler crashes a process at a chosen base-object step: the step
// never executes and the process never runs again.  The wait-free
// implementations must then still
//   * let every surviving process finish (wait-freedom does not depend on
//     cooperation -- unlike a lock, a dead process cannot block anyone),
//   * produce a history that is linearizable with the crashed operation
//     pending (it may have taken effect or not).
//
// Crash points are swept across every step of the victim's operation, so
// the "just before publish" and "mid embedded-scan" windows are all hit.
//
// Note on memory: the simulated crash unwinds RAII state, so EBR pins are
// released; a real deployment would need crash-robust reclamation, which
// is outside the paper's model (it assumes garbage-collected registers).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baseline/double_collect.h"
#include "core/partial_snapshot.h"
#include "registry/registry.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "tests/support/registry_params.h"
#include "verify/lin_checker.h"
#include "verify/recording.h"

namespace psnap::core {
namespace {

using runtime::SimScheduler;
using verify::check_snapshot_linearizable;
using verify::History;
using verify::LinCheckOptions;
using verify::LinResult;
using verify::RecordingSnapshot;

// Crash tolerance is a wait-freedom property, so the sweep covers every
// registered wait-free, sim-safe implementation.
std::vector<const registry::SnapshotInfo*> crash_impls() {
  return test::snapshot_impls([](const registry::SnapshotInfo& info) {
    return info.is_wait_free && info.sim_safe;
  });
}

void expect_linearizable(const History& history, std::uint32_t m) {
  LinCheckOptions options;
  options.num_components = m;
  auto outcome = check_snapshot_linearizable(history.operations(), options);
  ASSERT_EQ(outcome.result, LinResult::kLinearizable)
      << outcome.diagnosis << "\nhistory:\n"
      << history.to_string();
}

class SnapshotCrashTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

// Crash the updater at every possible step of its operation; the scanner
// must always complete and the history must stay linearizable.
TEST_P(SnapshotCrashTest, UpdaterCrashSweep) {
  constexpr std::uint32_t kM = 2;
  for (std::uint64_t crash_step = 1; crash_step <= 40; ++crash_step) {
    auto snap = test::make_snapshot(*GetParam(), kM, 2);
    History history;
    RecordingSnapshot recorded(*snap, history);
    bool scanner_finished = false;

    SimScheduler::Options options;
    options.crashes = {{0, crash_step}};
    SimScheduler sched(options);
    sched.add_process([&] {
      recorded.update(0, 11);
      recorded.update(1, 22);  // only reached if crash_step is past op 1
    });
    sched.add_process([&] {
      std::vector<std::uint64_t> out;
      recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
      recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
      scanner_finished = true;
    });
    sched.run();

    ASSERT_TRUE(scanner_finished)
        << GetParam()->name << " crash at step " << crash_step;
    expect_linearizable(history, kM);
  }
}

// Crash the scanner mid-scan; updaters must keep completing (the dead
// scanner stays "announced" and joined forever -- updaters keep helping
// it, which costs steps but never blocks).
TEST_P(SnapshotCrashTest, ScannerCrashSweep) {
  constexpr std::uint32_t kM = 2;
  for (std::uint64_t crash_step = 1; crash_step <= 12; ++crash_step) {
    auto snap = test::make_snapshot(*GetParam(), kM, 2);
    History history;
    RecordingSnapshot recorded(*snap, history);
    int updates_done = 0;

    SimScheduler::Options options;
    options.crashes = {{1, crash_step}};
    SimScheduler sched(options);
    sched.add_process([&] {
      for (std::uint64_t k = 1; k <= 5; ++k) {
        recorded.update(0, k);
        ++updates_done;
      }
    });
    sched.add_process([&] {
      std::vector<std::uint64_t> out;
      recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
    });
    sched.run();

    ASSERT_EQ(updates_done, 5)
        << GetParam()->name << " crash at step " << crash_step;
    expect_linearizable(history, kM);
  }
}

// Two crashes: an updater and a scanner die; the surviving scanner still
// finishes with a consistent view.
TEST_P(SnapshotCrashTest, DoubleCrashSurvivorCompletes) {
  constexpr std::uint32_t kM = 2;
  for (std::uint64_t c1 : {2ull, 5ull, 9ull}) {
    for (std::uint64_t c2 : {1ull, 3ull, 7ull}) {
      auto snap = test::make_snapshot(*GetParam(), kM, 3);
      History history;
      RecordingSnapshot recorded(*snap, history);
      bool survivor_finished = false;

      SimScheduler::Options options;
      options.crashes = {{0, c1}, {1, c2}};
      SimScheduler sched(options);
      sched.add_process([&] {
        recorded.update(0, 1);
        recorded.update(1, 2);
      });
      sched.add_process([&] {
        std::vector<std::uint64_t> out;
        recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
      });
      sched.add_process([&] {
        std::vector<std::uint64_t> out;
        recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
        recorded.scan(std::vector<std::uint32_t>{1}, out);
        survivor_finished = true;
      });
      sched.run();

      ASSERT_TRUE(survivor_finished) << GetParam()->name;
      expect_linearizable(history, kM);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WaitFreeImpls, SnapshotCrashTest,
                         ::testing::ValuesIn(crash_impls()),
                         test::snapshot_param_name);

// Contrast: the double-collect baseline is NOT crash-tolerant for
// scanners in general -- but a crashed *updater* cannot block it either
// (it only loops while values keep changing).  What a dead process CAN do
// to the lock baseline is block everyone forever; we do not run that as a
// test, for obvious reasons.
TEST(SnapshotCrashContrast, DoubleCollectSurvivesQuietCrash) {
  baseline::DoubleCollectSnapshot snap(2, 2);
  History history;
  RecordingSnapshot recorded(snap, history);
  bool scanner_finished = false;

  SimScheduler::Options options;
  options.crashes = {{0, 2}};  // updater dies mid-operation
  SimScheduler sched(options);
  sched.add_process([&] { recorded.update(0, 5); });
  sched.add_process([&] {
    std::vector<std::uint64_t> out;
    recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
    scanner_finished = true;
  });
  sched.run();
  EXPECT_TRUE(scanner_finished);

  LinCheckOptions check;
  check.num_components = 2;
  EXPECT_EQ(check_snapshot_linearizable(history.operations(), check).result,
            LinResult::kLinearizable);
}

}  // namespace
}  // namespace psnap::core
