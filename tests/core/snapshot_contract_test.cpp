// Sequential behavioural contract shared by every partial snapshot
// implementation (the paper's two algorithms and all four baselines).
#include <gtest/gtest.h>

#include <memory>

#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/registry_params.h"

namespace psnap::core {
namespace {

class SnapshotContractTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {
 protected:
  std::unique_ptr<PartialSnapshot> make(std::uint32_t m, std::uint32_t n = 4) {
    return test::make_snapshot(*GetParam(), m, n);
  }
};

TEST_P(SnapshotContractTest, InitialValuesAreZero) {
  auto snap = make(8);
  exec::ScopedPid pid(0);
  EXPECT_EQ(snap->scan({0, 3, 7}),
            (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST_P(SnapshotContractTest, UpdateThenScanRoundTrip) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(2, 77);
  EXPECT_EQ(snap->scan({2}), (std::vector<std::uint64_t>{77}));
}

TEST_P(SnapshotContractTest, UpdatesToDistinctComponentsIndependent) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(0, 1);
  snap->update(1, 2);
  snap->update(3, 4);
  EXPECT_EQ(snap->scan({0, 1, 2, 3}),
            (std::vector<std::uint64_t>{1, 2, 0, 4}));
}

TEST_P(SnapshotContractTest, LastUpdateWins) {
  auto snap = make(2);
  exec::ScopedPid pid(0);
  snap->update(0, 1);
  snap->update(0, 2);
  snap->update(0, 3);
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{3}));
}

TEST_P(SnapshotContractTest, ScanPreservesRequestOrder) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(0, 10);
  snap->update(1, 11);
  snap->update(2, 12);
  EXPECT_EQ(snap->scan({2, 0, 1}),
            (std::vector<std::uint64_t>{12, 10, 11}));
}

TEST_P(SnapshotContractTest, ScanWithDuplicates) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(1, 5);
  EXPECT_EQ(snap->scan({1, 1, 1}),
            (std::vector<std::uint64_t>{5, 5, 5}));
}

TEST_P(SnapshotContractTest, EmptyScanReturnsEmpty) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> none;
  EXPECT_TRUE(snap->scan(std::span<const std::uint32_t>(none)).empty());
}

TEST_P(SnapshotContractTest, ScanAllCoversEveryComponent) {
  auto snap = make(5);
  exec::ScopedPid pid(0);
  for (std::uint32_t i = 0; i < 5; ++i) snap->update(i, i * 100);
  EXPECT_EQ(snap->scan_all(),
            (std::vector<std::uint64_t>{0, 100, 200, 300, 400}));
}

TEST_P(SnapshotContractTest, SingleComponentObject) {
  auto snap = make(1);
  exec::ScopedPid pid(0);
  snap->update(0, 9);
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{9}));
}

TEST_P(SnapshotContractTest, DifferentPidsCanUpdate) {
  // Multi-writer: any process may update any component.
  auto snap = make(2, 4);
  {
    exec::ScopedPid pid(0);
    snap->update(0, 1);
  }
  {
    exec::ScopedPid pid(3);
    snap->update(0, 2);
  }
  exec::ScopedPid pid(1);
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{2}));
}

TEST_P(SnapshotContractTest, ManyUpdatesManyScans) {
  auto snap = make(16);
  exec::ScopedPid pid(0);
  for (std::uint64_t round = 1; round <= 50; ++round) {
    for (std::uint32_t i = 0; i < 16; ++i) {
      snap->update(i, round * 100 + i);
    }
    auto values = snap->scan({3, 7, 11});
    EXPECT_EQ(values[0], round * 100 + 3);
    EXPECT_EQ(values[1], round * 100 + 7);
    EXPECT_EQ(values[2], round * 100 + 11);
  }
}

TEST_P(SnapshotContractTest, FlagsReportedConsistently) {
  auto snap = make(2);
  EXPECT_FALSE(snap->name().empty());
  EXPECT_EQ(snap->num_components(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, SnapshotContractTest,
                         ::testing::ValuesIn(test::snapshot_impls()),
                         test::snapshot_param_name);

}  // namespace
}  // namespace psnap::core
