// Sequential behavioural contract shared by every partial snapshot
// implementation (the paper's two algorithms and all four baselines).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baseline/double_collect.h"
#include "baseline/full_snapshot.h"
#include "baseline/lock_snapshot.h"
#include "baseline/seqlock_snapshot.h"
#include "core/cas_psnap.h"
#include "core/partial_snapshot.h"
#include "core/register_psnap.h"
#include "exec/exec.h"

namespace psnap::core {
namespace {

using Factory = std::function<std::unique_ptr<PartialSnapshot>(
    std::uint32_t m, std::uint32_t n)>;

struct Impl {
  std::string label;
  Factory make;
};

Impl all_impls[] = {
    {"fig1_register",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<RegisterPartialSnapshot>(m, n);
     }},
    {"fig3_cas",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<CasPartialSnapshot>(m, n);
     }},
    {"fig3_write_ablation",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       CasPartialSnapshot::Options options;
       options.use_cas = false;
       return std::make_unique<CasPartialSnapshot>(m, n, options);
     }},
    {"full_snapshot",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::FullSnapshot>(m, n);
     }},
    {"double_collect",
     [](std::uint32_t m, std::uint32_t n) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::DoubleCollectSnapshot>(m, n);
     }},
    {"lock",
     [](std::uint32_t m, std::uint32_t) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::LockSnapshot>(m);
     }},
    {"seqlock",
     [](std::uint32_t m, std::uint32_t) -> std::unique_ptr<PartialSnapshot> {
       return std::make_unique<baseline::SeqlockSnapshot>(m);
     }},
};

class SnapshotContractTest : public ::testing::TestWithParam<Impl> {
 protected:
  std::unique_ptr<PartialSnapshot> make(std::uint32_t m, std::uint32_t n = 4) {
    return GetParam().make(m, n);
  }
};

TEST_P(SnapshotContractTest, InitialValuesAreZero) {
  auto snap = make(8);
  exec::ScopedPid pid(0);
  EXPECT_EQ(snap->scan({0, 3, 7}),
            (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST_P(SnapshotContractTest, UpdateThenScanRoundTrip) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(2, 77);
  EXPECT_EQ(snap->scan({2}), (std::vector<std::uint64_t>{77}));
}

TEST_P(SnapshotContractTest, UpdatesToDistinctComponentsIndependent) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(0, 1);
  snap->update(1, 2);
  snap->update(3, 4);
  EXPECT_EQ(snap->scan({0, 1, 2, 3}),
            (std::vector<std::uint64_t>{1, 2, 0, 4}));
}

TEST_P(SnapshotContractTest, LastUpdateWins) {
  auto snap = make(2);
  exec::ScopedPid pid(0);
  snap->update(0, 1);
  snap->update(0, 2);
  snap->update(0, 3);
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{3}));
}

TEST_P(SnapshotContractTest, ScanPreservesRequestOrder) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(0, 10);
  snap->update(1, 11);
  snap->update(2, 12);
  EXPECT_EQ(snap->scan({2, 0, 1}),
            (std::vector<std::uint64_t>{12, 10, 11}));
}

TEST_P(SnapshotContractTest, ScanWithDuplicates) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  snap->update(1, 5);
  EXPECT_EQ(snap->scan({1, 1, 1}),
            (std::vector<std::uint64_t>{5, 5, 5}));
}

TEST_P(SnapshotContractTest, EmptyScanReturnsEmpty) {
  auto snap = make(4);
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> none;
  EXPECT_TRUE(snap->scan(std::span<const std::uint32_t>(none)).empty());
}

TEST_P(SnapshotContractTest, ScanAllCoversEveryComponent) {
  auto snap = make(5);
  exec::ScopedPid pid(0);
  for (std::uint32_t i = 0; i < 5; ++i) snap->update(i, i * 100);
  EXPECT_EQ(snap->scan_all(),
            (std::vector<std::uint64_t>{0, 100, 200, 300, 400}));
}

TEST_P(SnapshotContractTest, SingleComponentObject) {
  auto snap = make(1);
  exec::ScopedPid pid(0);
  snap->update(0, 9);
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{9}));
}

TEST_P(SnapshotContractTest, DifferentPidsCanUpdate) {
  // Multi-writer: any process may update any component.
  auto snap = make(2, 4);
  {
    exec::ScopedPid pid(0);
    snap->update(0, 1);
  }
  {
    exec::ScopedPid pid(3);
    snap->update(0, 2);
  }
  exec::ScopedPid pid(1);
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{2}));
}

TEST_P(SnapshotContractTest, ManyUpdatesManyScans) {
  auto snap = make(16);
  exec::ScopedPid pid(0);
  for (std::uint64_t round = 1; round <= 50; ++round) {
    for (std::uint32_t i = 0; i < 16; ++i) {
      snap->update(i, round * 100 + i);
    }
    auto values = snap->scan({3, 7, 11});
    EXPECT_EQ(values[0], round * 100 + 3);
    EXPECT_EQ(values[1], round * 100 + 7);
    EXPECT_EQ(values[2], round * 100 + 11);
  }
}

TEST_P(SnapshotContractTest, FlagsReportedConsistently) {
  auto snap = make(2);
  EXPECT_FALSE(snap->name().empty());
  EXPECT_EQ(snap->num_components(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, SnapshotContractTest,
                         ::testing::ValuesIn(all_impls),
                         [](const ::testing::TestParamInfo<Impl>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace psnap::core
