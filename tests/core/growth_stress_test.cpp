// Native-thread stress for the dynamic runtime: components grow while
// writer threads update and scanner threads (which register and
// deregister mid-run, exercising pid reuse through exec::ThreadRegistry)
// read overlapping subsets.
//
// Consistency oracle: each component has exactly one writing thread
// (ownership by index residue), writing strictly increasing sequence
// numbers tagged with the component index.  Any scan must therefore see
// (a) values whose component tag matches the requested index -- catches
// wrong-slot reads across segment boundaries -- and (b) per-component
// values that never go backwards across one scanner's sequential scans --
// catches stale reads after growth and torn hand-offs on pid reuse.
// Runs under ASan/UBSan and TSan via the sanitizer presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/partial_snapshot.h"
#include "exec/thread_registry.h"
#include "registry/registry.h"
#include "tests/support/registry_params.h"

namespace psnap::core {
namespace {

// value = seq * 4096 + component index (indices stay < 4096 here).
constexpr std::uint64_t kTag = 4096;

class GrowthStressTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(GrowthStressTest, ChurningThreadsAndGrowingComponents) {
  constexpr std::uint32_t kM0 = 4;
  constexpr std::uint32_t kGrowBlock = 8;
  constexpr std::uint32_t kGrows = 8;  // 4 -> 68 components
  constexpr std::uint32_t kWriters = 2;
  constexpr std::uint32_t kScanners = 2;
  constexpr std::uint64_t kScansPerScanner = 2000;
  constexpr std::uint64_t kScansPerLife = 100;  // pid churn cadence

  // max_threads: writers + scanners + grower, with headroom for the
  // moment a scanner's next life overlaps another thread's registration.
  auto snap = test::make_snapshot(*GetParam(), kM0, 8);
  std::atomic<bool> stop_writers{false};
  std::atomic<std::uint64_t> scans_done{0};

  // Grower: extends the component space in blocks until the target, then
  // exits; runs concurrently with everything else.
  std::thread grower([&] {
    exec::ThreadHandle pid;
    for (std::uint32_t g = 0; g < kGrows; ++g) {
      std::uint32_t first = snap->add_components(kGrowBlock);
      EXPECT_EQ(first, kM0 + g * kGrowBlock);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  // Writers: component i is owned by writer (i % kWriters); sequence
  // numbers per component increase strictly.
  std::vector<std::thread> writers;
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      exec::ThreadHandle pid;
      std::vector<std::uint64_t> seq(kM0 + kGrows * kGrowBlock, 0);
      while (!stop_writers.load(std::memory_order_acquire)) {
        const std::uint32_t m = snap->num_components();
        for (std::uint32_t i = w; i < m; i += kWriters) {
          snap->update(i, ++seq[i] * kTag + i);
        }
      }
    });
  }

  // Scanners: a new registered life every kScansPerLife scans.  Each
  // scanner remembers the last sequence number it saw per component;
  // single-writer components plus linearizable scans make those
  // observations monotone.
  std::vector<std::thread> scanners;
  for (std::uint32_t s = 0; s < kScanners; ++s) {
    scanners.emplace_back([&, s] {
      Xoshiro256 rng(s + 1);
      std::vector<std::uint64_t> last_seen(kM0 + kGrows * kGrowBlock, 0);
      std::vector<std::uint32_t> subset;
      std::vector<std::uint64_t> values;
      std::uint64_t done = 0;
      while (done < kScansPerScanner) {
        exec::ThreadHandle pid;  // one registered life
        for (std::uint64_t k = 0; k < kScansPerLife; ++k, ++done) {
          const std::uint32_t m = snap->num_components();
          subset.clear();
          for (int j = 0; j < 4; ++j) {
            std::uint32_t i =
                static_cast<std::uint32_t>(rng.next_below(m));
            if (std::find(subset.begin(), subset.end(), i) == subset.end())
              subset.push_back(i);
          }
          snap->scan(subset, values);
          for (std::size_t j = 0; j < subset.size(); ++j) {
            if (values[j] == 0) continue;  // not yet written
            ASSERT_EQ(values[j] % kTag, subset[j])
                << "component tag mismatch (wrong-slot read)";
            std::uint64_t seq = values[j] / kTag;
            ASSERT_GE(seq, last_seen[subset[j]])
                << "scan went backwards on component " << subset[j];
            last_seen[subset[j]] = seq;
          }
        }
      }
      scans_done.fetch_add(done);
    });
  }

  grower.join();
  for (auto& t : scanners) t.join();
  stop_writers.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();

  EXPECT_EQ(scans_done.load(), kScanners * kScansPerScanner);
  EXPECT_EQ(snap->num_components(), kM0 + kGrows * kGrowBlock);

  // Quiescent spot-check: the final state is readable across the whole
  // grown range and carries the right tags.
  exec::ThreadHandle pid;
  auto all = snap->scan_all();
  ASSERT_EQ(all.size(), kM0 + kGrows * kGrowBlock);
  for (std::uint32_t i = 0; i < all.size(); ++i) {
    if (all[i] != 0) {
      EXPECT_EQ(all[i] % kTag, i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WaitFreeImplementations, GrowthStressTest,
    ::testing::ValuesIn(test::snapshot_impls(
        [](const registry::SnapshotInfo& info) { return info.is_wait_free; })),
    test::snapshot_param_name);

}  // namespace
}  // namespace psnap::core
