// Tail-latency isolation of the reclamation planes (ISSUE 10).
//
// The knob this PR adds -- reclaim=ebr|hp plus EBR sharding by component
// segment -- exists for one scenario: a reader that loads its protection
// and then stalls (preempted, paging, debugger).  These tests park such a
// reader deliberately (core::CasPartialSnapshotT::ParkedReader) and
// measure retired-but-not-freed residency:
//
//   * global (1-shard) EBR: the parked pin freezes EVERY retirement in
//     the domain -- residency grows without bound while the reader sleeps;
//   * sharded EBR: only the parked reader's shard freezes; traffic in
//     other segments reclaims at full speed;
//   * hazard pointers: only the HANDFUL of records the reader protects
//     stay pinned; residency is bounded by the hazard-scan threshold no
//     matter how long the reader sleeps or where the traffic goes.
//
// bench_reclaim_plane turns the same contrast into numbers; these tests
// pin the qualitative property in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cas_psnap.h"
#include "core/growth.h"
#include "exec/exec.h"

namespace psnap::core {
namespace {

constexpr std::uint32_t kM = 64;
constexpr std::uint32_t kN = 4;

using Parked = CasPartialSnapshot::ParkedReader;

// Parks pid 1 on the given components; the caller updates under pid 0.
std::unique_ptr<Parked> park(CasPartialSnapshot& snap,
                             const std::vector<std::uint32_t>& indices) {
  exec::ScopedPid scanner(1);
  return std::make_unique<Parked>(snap, indices);
}

void unpark(std::unique_ptr<Parked>& parked) {
  exec::ScopedPid scanner(1);
  parked.reset();
}

TEST(ReclaimPlaneTest, GlobalEbrParkedScannerFreezesAllReclamation) {
  // The baseline failure mode: with one global domain, a single parked
  // reader holds back every retirement, even of components it never read.
  CasPartialSnapshot snap(kM, kN);
  auto parked = park(snap, {0});
  {
    exec::ScopedPid updater(0);
    for (int k = 0; k < 3000; ++k) {
      snap.update(static_cast<std::uint32_t>(k % kM), k);
    }
  }
  EXPECT_GT(snap.reclaim_outstanding(), 2500u);
  unpark(parked);
  // Unparked, the backlog drains as soon as operations run again.
  {
    exec::ScopedPid updater(0);
    for (int k = 0; k < 200; ++k) {
      snap.update(static_cast<std::uint32_t>(k % kM), k);
    }
  }
  EXPECT_LT(snap.reclaim_outstanding(), 1000u);
}

TEST(ReclaimPlaneTest, ShardedEbrParkedScannerFreezesOnlyItsShard) {
  // Components map to shards by segment (core/growth.h), so a reader
  // parked in segment 0 freezes shard 0 while segment-1 traffic reclaims
  // through its own domain unimpeded.
  CasSnapshotOptions options;
  options.reclaim_shards = 2;
  const std::uint32_t m = 2 * kComponentSegmentSize;
  CasPartialSnapshot snap(m, kN, options, 0);
  auto parked = park(snap, {0});
  {
    exec::ScopedPid updater(0);
    for (int k = 0; k < 3000; ++k) {
      snap.update(kComponentSegmentSize + static_cast<std::uint32_t>(k % kM),
                  k);
    }
    EXPECT_LT(snap.reclaim_outstanding(), 1000u)
        << "the unparked shard should reclaim freely";
    std::uint64_t before = snap.reclaim_outstanding();
    for (int k = 0; k < 3000; ++k) {
      snap.update(static_cast<std::uint32_t>(k % kM), k);
    }
    EXPECT_GT(snap.reclaim_outstanding(), before + 2500)
        << "the parked shard should freeze behind the pin";
  }
  unpark(parked);
}

TEST(ReclaimPlaneTest, HpParkedScannerBlocksOnlyTheRecordsItProtects) {
  // The hp plane's whole point: the parked reader pins exactly the two
  // records its hazards cover; every other retirement frees on the next
  // hazard scan, so residency stays bounded by the scan threshold no
  // matter how long the reader sleeps.
  CasSnapshotOptions options;
  options.use_hp = true;
  CasPartialSnapshot snap(kM, kN, options, 0);
  auto parked = park(snap, {0, 1});
  {
    exec::ScopedPid updater(0);
    for (int k = 0; k < 5000; ++k) {
      snap.update(static_cast<std::uint32_t>(k % kM), k);
    }
    EXPECT_LT(snap.reclaim_outstanding(), 600u)
        << "hp residency must stay bounded under a parked scanner";
  }
  unpark(parked);
}

}  // namespace
}  // namespace psnap::core
