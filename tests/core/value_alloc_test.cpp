// Steady-state INDIRECT (value=blob) operations must not touch the heap.
//
// scan_alloc_test and update_alloc_test prove the direct (u64) plane
// allocation-free; this suite closes the new axis PR 5 opened: the blob
// plane embeds variable-size byte payloads in the pooled records, and
// pooling must keep every one of those buffers' capacity across record
// lives for the steady state to stay clean.  Concretely, after warm-up:
//
//   * update_blob(i, bytes) acquires a recycled record whose payload
//     vector already has the bytes' capacity, re-fills it in place, and
//     publishes; the replaced record returns to the pool with its
//     capacity intact (records pool-recycled through EBR);
//   * the embedded scan's view entries re-fill their per-entry payload
//     buffers in place (resize+assign, never clear+push_back);
//   * scan_blobs copies payloads into the caller's buffer, which also
//     retains element capacity (resize, not clear).
//
// Like its siblings this is its own binary: it replaces the global
// operator new/delete with the shared counting versions.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/cas_psnap.h"
#include "core/op_stats.h"
#include "core/partial_snapshot.h"
#include "core/register_psnap.h"
#include "exec/exec.h"
#include "primitives/value_plane.h"
#include "registry/registry.h"
#include "tests/support/counting_allocator.h"

namespace psnap::core {
namespace {

using test::g_allocations;

constexpr std::uint32_t kM = 64;
constexpr std::uint32_t kN = 4;

// A telemetry-record-shaped payload, deliberately larger than a word.
struct Telemetry {
  std::uint32_t id;
  std::uint64_t timestamp;
  double reading;
};

Telemetry telemetry_for(int k) {
  return Telemetry{static_cast<std::uint32_t>(k % kM),
                   static_cast<std::uint64_t>(1000 + k), k * 0.5};
}

// Runs `updates` round-robin blob updates and returns how many heap
// allocations they performed in total.
std::uint64_t allocations_during_blob_updates(PartialSnapshot& snap,
                                              int updates) {
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int k = 0; k < updates; ++k) {
    Telemetry t = telemetry_for(k);
    snap.update_blob(static_cast<std::uint32_t>(k % kM),
                     value::as_bytes_of(t));
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

// Drives blob updates (and a few scans, so announcement machinery is
// live) far past every warm-up watermark: pool fill, EBR retired-list
// capacity, ScanContext scratch, per-record payload and view capacity.
void warm_up(PartialSnapshot& snap) {
  std::vector<value::Blob> out;
  const std::vector<std::uint32_t> idx{3, 9, 17, 40};
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < kM; ++i) {
      Telemetry t = telemetry_for(static_cast<int>(i));
      snap.update_blob(i, value::as_bytes_of(t));
    }
    snap.scan_blobs(idx, out);
  }
  for (int k = 0; k < 512; ++k) {
    Telemetry t = telemetry_for(k);
    snap.update_blob(static_cast<std::uint32_t>(k % kM),
                     value::as_bytes_of(t));
  }
}

// Every blob-plane construction route -- canned entries and value=blob
// specs, both runtimes -- must reach an allocation-free indirect-update
// steady state.
TEST(ValueAllocTest, SteadyStateBlobUpdatesAreAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"fig1_register_blob", "fig3_cas_blob", "full_snapshot_blob",
        "fig1_register_fast:value=blob", "fig3_cas_fast:value=blob",
        "fig3_write_ablation:value=blob"}) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    ASSERT_EQ(snap->value_plane(), "blob") << spec;
    warm_up(*snap);
    EXPECT_EQ(allocations_during_blob_updates(*snap, 512), 0u) << spec;
    // The updates still publish real data.
    std::vector<value::Blob> out;
    const std::vector<std::uint32_t> last{511 % kM};
    snap->scan_blobs(last, out);
    Telemetry t{};
    ASSERT_TRUE(value::from_bytes(out[0], t)) << spec;
    EXPECT_EQ(t.timestamp, 1000u + 511) << spec;
  }
}

// Logical-u64 updates on the blob plane route through the same pooled
// payloads (8-byte encodings) and must be just as clean -- this is the
// path every registry-driven harness drives.
TEST(ValueAllocTest, SteadyStateU64UpdatesOnBlobPlaneAreAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec : {"fig1_register_blob", "fig3_cas_blob"}) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    warm_up(*snap);
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int k = 0; k < 512; ++k) {
      snap->update(static_cast<std::uint32_t>(k % kM), 5000 + k);
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << spec;
    EXPECT_EQ(snap->scan({static_cast<std::uint32_t>(511 % kM)}),
              (std::vector<std::uint64_t>{5000 + 511}))
        << spec;
  }
}

// Shape-stable blob scans: the collect buffers, view-entry payloads, and
// the caller's result blobs all reach capacity and stop allocating.
TEST(ValueAllocTest, SteadyStateBlobScansAreAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"fig1_register_blob", "fig3_cas_blob", "full_snapshot_blob"}) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    warm_up(*snap);
    std::vector<value::Blob> out;
    const std::vector<std::uint32_t> idx{3, 9, 17, 40};
    for (int k = 0; k < 64; ++k) snap->scan_blobs(idx, out);
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int k = 0; k < 256; ++k) snap->scan_blobs(idx, out);
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << spec;
  }
}

// The helping path: with a scanner announced AND active, every blob
// update's getSet returns it and the embedded scan collects the announced
// set -- so the record's view carries real blob payloads.  That whole
// machinery must also be allocation-free in steady state, and the record
// pool must be demonstrably recycling (not silently heap-feeding).
template <class Snap>
void run_helping_blob_update_test(Snap& snap) {
  {
    exec::ScopedPid scanner(1);
    std::vector<value::Blob> out;
    const std::vector<std::uint32_t> idx{3, 9, 17, 40};
    snap.scan_blobs(idx, out);
    snap.active_set().join();
  }
  {
    exec::ScopedPid updater(0);
    warm_up(snap);
    std::uint64_t reused_before = snap.record_pool().reused_count();
    EXPECT_EQ(allocations_during_blob_updates(snap, 512), 0u);
    EXPECT_GT(tls_op_stats().getset_size, 0u)
        << "helping path was not exercised";
    EXPECT_GE(snap.record_pool().reused_count(), reused_before + 256)
        << "records are not recycling through the pool";
  }
  {
    exec::ScopedPid scanner(1);
    snap.active_set().leave();
  }
}

TEST(ValueAllocHelpingTest, CasSnapshotBlobHelpingUpdatesAreAllocationFree) {
  CasPartialSnapshotBlob snap(kM, kN);
  run_helping_blob_update_test(snap);
}

TEST(ValueAllocHelpingTest,
     CasSnapshotBlobFastHelpingUpdatesAreAllocationFree) {
  CasPartialSnapshotBlobFast snap(kM, kN);
  run_helping_blob_update_test(snap);
}

TEST(ValueAllocHelpingTest,
     RegisterSnapshotBlobHelpingUpdatesAreAllocationFree) {
  RegisterPartialSnapshotBlob snap(kM, kN);
  run_helping_blob_update_test(snap);
}

TEST(ValueAllocHelpingTest,
     RegisterSnapshotBlobFastHelpingUpdatesAreAllocationFree) {
  RegisterPartialSnapshotBlobFast snap(kM, kN);
  run_helping_blob_update_test(snap);
}

// Growth: after add_components, blob updates across the enlarged range
// must return to the allocation-free steady state (fresh initial records,
// segment installs, and first-lap pool flow are the one-time warm-up).
TEST(ValueAllocTestExtras, GrowthKeepsSteadyStateBlobUpdatesAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec :
       {"fig1_register_blob", "fig3_cas_blob", "full_snapshot_blob"}) {
    auto snap = registry::make_snapshot(spec, kM, kN);
    warm_up(*snap);
    std::uint32_t first = snap->add_components(16);
    EXPECT_EQ(first, kM) << spec;
    const std::uint32_t grown = kM + 16;
    for (int k = 0; k < 1024; ++k) {
      Telemetry t = telemetry_for(k);
      snap->update_blob(static_cast<std::uint32_t>(k % grown),
                        value::as_bytes_of(t));
    }
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int k = 0; k < 512; ++k) {
      Telemetry t = telemetry_for(k);
      snap->update_blob(static_cast<std::uint32_t>(k % grown),
                        value::as_bytes_of(t));
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
        << spec;
  }
}

// Payload-size changes are a capacity event, not a leak: growing the
// payload re-fills pooled buffers (one-time regrowth), after which the
// larger shape is steady-state clean again.
TEST(ValueAllocTestExtras, PayloadGrowthReachesANewSteadyState) {
  exec::ScopedPid pid(0);
  auto snap = registry::make_snapshot("fig3_cas_blob", kM, kN);
  warm_up(*snap);
  // Switch every component to a 4x larger payload; let the bigger shape
  // flow through the pool once.
  std::vector<std::byte> big(4 * sizeof(Telemetry), std::byte{0x5a});
  for (int k = 0; k < 1024; ++k) {
    snap->update_blob(static_cast<std::uint32_t>(k % kM),
                      std::span<const std::byte>(big));
  }
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int k = 0; k < 512; ++k) {
    snap->update_blob(static_cast<std::uint32_t>(k % kM),
                      std::span<const std::byte>(big));
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
  std::vector<value::Blob> out;
  const std::vector<std::uint32_t> idx{0};
  snap->scan_blobs(idx, out);
  EXPECT_EQ(out[0].size(), big.size());
  EXPECT_EQ(std::memcmp(out[0].data(), big.data(), big.size()), 0);
}

}  // namespace
}  // namespace psnap::core
