// Steady-state scans must not touch the heap.
//
// The ScanContext refactor moved every per-operation buffer (collect
// arrays, condition-(2) tables, the canonical index set, the result view,
// and the announcement) into reusable storage.  This suite replaces the
// global operator new/delete with counting versions -- which is why it is
// its own test binary -- warms a snapshot up to its steady state, and then
// asserts that scanning performs ZERO allocations.
//
// Warm-up is what makes "steady state" precise: the first scan of a shape
// allocates its announcement IndexSet, grows the thread-local context to
// its watermark, and (for Figure 3) installs the active set's first slot
// segment.  After that, repeated scans of the same shape -- the hot path
// every bench measures -- reuse all of it.  The measured window stays
// well inside one slot segment (1024 joins) so the amortized Figure-2
// segment growth cannot fire mid-measurement.
#include <gtest/gtest.h>

#include <vector>

#include "core/partial_snapshot.h"
#include "core/scan_context.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/counting_allocator.h"

namespace psnap::core {
namespace {

using test::g_allocations;

// Runs `scans` identical scans and returns how many heap allocations they
// performed in total.
std::uint64_t allocations_during_scans(PartialSnapshot& snap,
                                       const std::vector<std::uint32_t>& idx,
                                       int scans) {
  std::vector<std::uint64_t> out;
  snap.scan(idx, out);  // make sure `out` has its capacity
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < scans; ++i) {
    snap.scan(idx, out);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

class ScanAllocTest : public ::testing::Test {
 protected:
  // Builds a snapshot, populates it, and warms the scan path.
  std::unique_ptr<PartialSnapshot> warmed(const char* spec) {
    auto snap = registry::make_snapshot(spec, 64, 4);
    for (std::uint32_t i = 0; i < 64; ++i) snap->update(i, 1000 + i);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 16; ++i) snap->scan(kIndices, out);
    return snap;
  }

  const std::vector<std::uint32_t> kIndices{3, 9, 17, 40};
};

TEST_F(ScanAllocTest, CasSnapshotSteadyStateScanIsAllocationFree) {
  exec::ScopedPid pid(0);
  auto snap = warmed("fig3_cas");
  // 400 scans consume 400 Figure-2 slots; with the 17 warm-up joins that
  // stays far inside the first 1024-slot segment.
  EXPECT_EQ(allocations_during_scans(*snap, kIndices, 400), 0u);
  // The scans still return real data.
  EXPECT_EQ(snap->scan({3}), (std::vector<std::uint64_t>{1003}));
}

TEST_F(ScanAllocTest, RegisterSnapshotSteadyStateScanIsAllocationFree) {
  exec::ScopedPid pid(0);
  auto snap = warmed("fig1_register");
  EXPECT_EQ(allocations_during_scans(*snap, kIndices, 400), 0u);
}

TEST_F(ScanAllocTest, BaselineSteadyStateScansAreAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec : {"double_collect", "seqlock", "lock"}) {
    auto snap = warmed(spec);
    EXPECT_EQ(allocations_during_scans(*snap, kIndices, 100), 0u) << spec;
  }
}

TEST_F(ScanAllocTest, ChangingTheScanShapeReusesGrownCapacity) {
  exec::ScopedPid pid(0);
  auto snap = warmed("fig3_cas");
  // A smaller subset of the warmed shape fits in every grown buffer; a
  // fresh announcement is the one allowed allocation when the set changes.
  std::vector<std::uint32_t> narrow{9, 17};
  std::vector<std::uint64_t> out;
  snap->scan(narrow, out);  // announce the new set (may allocate)
  EXPECT_EQ(allocations_during_scans(*snap, narrow, 200), 0u);
}

TEST_F(ScanAllocTest, GrowingTheObjectKeepsSteadyStateScansAllocationFree) {
  exec::ScopedPid pid(0);
  for (const char* spec : {"fig3_cas", "fig1_register"}) {
    auto snap = warmed(spec);
    // Grow past the warmed range (the grow itself may allocate: new
    // records, a segment install) and publish into the new components.
    std::uint32_t first = snap->add_components(16);
    EXPECT_EQ(first, 64u);
    EXPECT_EQ(snap->num_components(), 80u);
    for (std::uint32_t i = first; i < first + 16; ++i) {
      snap->update(i, 2000 + i);
    }
    // A scan shape straddling old and new components: the changed
    // announcement and the wider collect buffers are the one-time warm-up,
    // after which scans must be allocation-free again.
    const std::vector<std::uint32_t> straddle{3, 40, 70, 79};
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 16; ++i) snap->scan(straddle, out);
    EXPECT_EQ(allocations_during_scans(*snap, straddle, 200), 0u) << spec;
    EXPECT_EQ(snap->scan({70}), (std::vector<std::uint64_t>{2070})) << spec;
  }
}

TEST_F(ScanAllocTest, ExplicitContextIsReusableAcrossSnapshots) {
  // The context parameter is part of the public API: one context threaded
  // through scans of two different objects keeps both allocation-free
  // once warmed.
  exec::ScopedPid pid(0);
  auto a = warmed("fig3_cas");
  auto b = warmed("fig1_register");
  ScanContext ctx;
  std::vector<std::uint64_t> out;
  for (int i = 0; i < 4; ++i) {
    a->scan(kIndices, out, ctx);
    b->scan(kIndices, out, ctx);
  }
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    a->scan(kIndices, out, ctx);
    b->scan(kIndices, out, ctx);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

TEST(ScanArenaTest, ReusesBlocksAcrossResets) {
  ScanArena arena;
  auto first = arena.take<std::uint64_t>(100);
  first[0] = 7;
  std::size_t watermark = arena.allocated_bytes();
  EXPECT_GT(watermark, 0u);
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    auto span = arena.take<std::uint64_t>(100);
    // Zero-filled every time, same capacity.
    EXPECT_EQ(span[0], 0u);
    span[0] = 9;
    EXPECT_EQ(arena.allocated_bytes(), watermark);
  }
}

TEST(ScanArenaTest, GrowingTakesKeepEarlierSpansValid) {
  ScanArena arena;
  auto small = arena.take<std::uint32_t>(4);
  small[0] = 42;
  // Force additional blocks; the first span must stay intact (chunked
  // arena, no realloc).
  for (int i = 0; i < 8; ++i) {
    auto big = arena.take<std::uint64_t>(4096);
    big[0] = 1;
  }
  EXPECT_EQ(small[0], 42u);
}

}  // namespace
}  // namespace psnap::core
