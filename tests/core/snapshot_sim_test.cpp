// Linearizability of the snapshot implementations under systematically
// explored and randomized schedules, checked by the Wing-Gong searcher.
//
// These scenarios are small by design (the checker is exponential), but the
// DFS explorer drives them through hundreds-to-thousands of distinct
// interleavings, including the helping paths: the "borrow coverage" tests
// assert that condition (2) actually fired somewhere in the exploration,
// so the helping machinery is exercised, not just present.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>

#include "core/cas_psnap.h"
#include "core/op_stats.h"
#include "core/partial_snapshot.h"
#include "core/register_psnap.h"
#include "registry/registry.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "tests/support/registry_params.h"
#include "verify/lin_checker.h"
#include "verify/recording.h"

namespace psnap::core {
namespace {

using runtime::ExploreOptions;
using runtime::SimScheduler;
using verify::check_snapshot_linearizable;
using verify::History;
using verify::LinCheckOptions;
using verify::LinResult;
using verify::RecordingSnapshot;

// Every registered implementation that is safe to drive under the
// deterministic scheduler (the mutex and seqlock baselines block/spin
// outside the step-instrumented model).
std::vector<const registry::SnapshotInfo*> checked_impls() {
  return test::snapshot_impls(
      [](const registry::SnapshotInfo& info) { return info.sim_safe; });
}

void expect_linearizable(const History& history, std::uint32_t m) {
  LinCheckOptions options;
  options.num_components = m;
  auto outcome = check_snapshot_linearizable(history.operations(), options);
  ASSERT_NE(outcome.result, LinResult::kNotLinearizable)
      << outcome.diagnosis << "\nhistory:\n"
      << history.to_string();
  ASSERT_EQ(outcome.result, LinResult::kLinearizable)
      << "checker budget exceeded on:\n"
      << history.to_string();
}

class SnapshotLinSimTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

// Scenario A: one updater racing one scanner on two components.
TEST_P(SnapshotLinSimTest, UpdaterVsScannerDfs) {
  constexpr std::uint32_t kM = 2;
  auto stats = runtime::explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        auto snap = test::make_snapshot(*GetParam(), kM, 2);
        History history;
        RecordingSnapshot recorded(*snap, history);

        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        sched.add_process([&] {
          recorded.update(0, 1);
          recorded.update(1, 2);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
        });
        auto result = sched.run();
        expect_linearizable(history, kM);
        return result;
      },
      ExploreOptions{.max_schedules = 800});
  EXPECT_TRUE(stats.exhausted || stats.schedules_run >= 100u);
}

// Scenario B: two updaters on the SAME component racing a scanner
// (exercises the multi-writer paths and, for Figure 3, CAS failures).
TEST_P(SnapshotLinSimTest, WriteContentionDfs) {
  constexpr std::uint32_t kM = 2;
  auto stats = runtime::explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        auto snap = test::make_snapshot(*GetParam(), kM, 3);
        History history;
        RecordingSnapshot recorded(*snap, history);

        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        sched.add_process([&] { recorded.update(0, 10); });
        sched.add_process([&] { recorded.update(0, 20); });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          recorded.scan(std::vector<std::uint32_t>{0, 1}, out);
        });
        auto result = sched.run();
        expect_linearizable(history, kM);
        return result;
      },
      ExploreOptions{.max_schedules = 800});
  EXPECT_TRUE(stats.exhausted || stats.schedules_run >= 100u);
}

// Scenario C: randomized, heavier -- three updaters, two scanners, three
// components, several ops each.
TEST_P(SnapshotLinSimTest, RandomSchedulesHeavier) {
  constexpr std::uint32_t kM = 3;
  runtime::explore_random(
      [&](std::uint64_t seed) {
        auto snap = test::make_snapshot(*GetParam(), kM, 5);
        History history;
        RecordingSnapshot recorded(*snap, history);

        SimScheduler::Options options;
        options.policy = SimScheduler::Policy::kRandom;
        options.seed = seed;
        SimScheduler sched(options);
        for (std::uint32_t u = 0; u < 3; ++u) {
          sched.add_process([&, u] {
            recorded.update(u, 100 + u);
            recorded.update((u + 1) % kM, 200 + u);
          });
        }
        for (int s = 0; s < 2; ++s) {
          sched.add_process([&] {
            std::vector<std::uint64_t> out;
            recorded.scan(std::vector<std::uint32_t>{0, 2}, out);
            recorded.scan(std::vector<std::uint32_t>{0, 1, 2}, out);
          });
        }
        sched.run();
        expect_linearizable(history, kM);
      },
      /*runs=*/80);
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, SnapshotLinSimTest,
                         ::testing::ValuesIn(checked_impls()),
                         test::snapshot_param_name);

// ---------------------------------------------------------------------------
// Helping-path (condition (2)) coverage.
// ---------------------------------------------------------------------------

struct BorrowProbe {
  std::uint64_t scans_borrowed = 0;
  std::uint64_t scans_total = 0;
};

// Runs a borrow-inducing scenario (one busy updater, one scanner) across
// random schedules and reports how many scans terminated via condition (2).
template <class MakeSnap>
BorrowProbe probe_borrows(MakeSnap make_snap, std::uint64_t runs) {
  std::atomic<std::uint64_t> borrowed{0}, total{0};
  runtime::explore_random(
      [&](std::uint64_t seed) {
        auto snap = make_snap();
        SimScheduler::Options options;
        // Bias toward the updater (pid 0): the scanner's collects are then
        // separated by whole updates, which is the adversary that forces
        // the helping path.
        options.policy = SimScheduler::Policy::kRandomBiased;
        options.bias_pid = 0;
        options.bias_probability = 0.85;
        options.seed = seed;
        SimScheduler sched(options);
        sched.add_process([&] {
          for (std::uint64_t k = 1; k <= 10; ++k) snap->update(0, k);
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          snap->scan(std::vector<std::uint32_t>{0, 1}, out);
          total.fetch_add(1);
          if (tls_op_stats().borrowed) borrowed.fetch_add(1);
        });
        sched.run();
      },
      runs);
  return BorrowProbe{borrowed.load(), total.load()};
}

TEST(SnapshotHelpingCoverage, Fig1BorrowPathExercised) {
  auto probe = probe_borrows(
      [] { return std::make_unique<RegisterPartialSnapshot>(2, 2); }, 200);
  EXPECT_EQ(probe.scans_total, 200u);
  // Under random schedules with six updates racing one scan, a healthy
  // fraction of scans must have used the helping path.
  EXPECT_GT(probe.scans_borrowed, 0u);
}

TEST(SnapshotHelpingCoverage, Fig3BorrowPathExercised) {
  auto probe = probe_borrows(
      [] { return std::make_unique<CasPartialSnapshot>(2, 2); }, 200);
  EXPECT_GT(probe.scans_borrowed, 0u);
}

TEST(SnapshotHelpingCoverage, Fig3CasFailureExercised) {
  // Two updaters hammering one component must produce CAS failures in some
  // schedule; a failed update still linearizes (checked by scenario B).
  std::atomic<std::uint64_t> failures{0};
  runtime::explore_random(
      [&](std::uint64_t seed) {
        CasPartialSnapshot snap(2, 2);
        SimScheduler::Options options;
        options.policy = SimScheduler::Policy::kRandom;
        options.seed = seed;
        SimScheduler sched(options);
        for (int u = 0; u < 2; ++u) {
          sched.add_process([&] {
            for (std::uint64_t k = 1; k <= 3; ++k) {
              snap.update(0, k);
              if (tls_op_stats().cas_failed) failures.fetch_add(1);
            }
          });
        }
        sched.run();
      },
      100);
  EXPECT_GT(failures.load(), 0u);
}

}  // namespace
}  // namespace psnap::core
