#include "core/aggregate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/cas_psnap.h"
#include "exec/exec.h"

namespace psnap::core {
namespace {

TEST(Aggregate, SumOfSubset) {
  CasPartialSnapshot snap(8, 2);
  exec::ScopedPid pid(0);
  snap.update(1, 10);
  snap.update(3, 20);
  snap.update(5, 30);
  std::vector<std::uint32_t> indices{1, 3, 5};
  EXPECT_EQ(scan_sum(snap, indices), 60u);
}

TEST(Aggregate, SumIncludesInitialZeros) {
  CasPartialSnapshot snap(4, 2);
  exec::ScopedPid pid(0);
  snap.update(0, 7);
  std::vector<std::uint32_t> indices{0, 1, 2};
  EXPECT_EQ(scan_sum(snap, indices), 7u);
}

TEST(Aggregate, MinMax) {
  CasPartialSnapshot snap(4, 2);
  exec::ScopedPid pid(0);
  snap.update(0, 5);
  snap.update(1, 2);
  snap.update(2, 9);
  std::vector<std::uint32_t> indices{0, 1, 2};
  auto [lo, hi] = scan_min_max(snap, indices);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 9u);
}

TEST(Aggregate, CustomReduce) {
  CasPartialSnapshot snap(4, 2);
  exec::ScopedPid pid(0);
  snap.update(0, 3);
  snap.update(1, 4);
  std::vector<std::uint32_t> indices{0, 1};
  std::uint64_t product = scan_reduce(
      snap, indices, std::uint64_t{1},
      [](std::uint64_t acc, std::uint64_t v) { return acc * v; });
  EXPECT_EQ(product, 12u);
}

TEST(Aggregate, ConsistentUnderConcurrentPairedUpdates) {
  // Pair conservation: one owner keeps components {0,1} summing to 100 by
  // writing them through states whose instantaneous sum differs by at most
  // its in-flight delta of 1 (see the portfolio example).  scan_sum sees a
  // consistent view, so the aggregate stays within 1 of the invariant.
  CasPartialSnapshot snap(2, 2);
  {
    // Establish the invariant before any auditor can look.
    exec::ScopedPid pid(0);
    snap.update(0, 50);
    snap.update(1, 50);
  }
  std::atomic<bool> stop{false};
  std::thread owner([&] {
    exec::ScopedPid pid(0);
    std::uint64_t a = 50;
    std::uint64_t tick = 0;
    while (!stop) {
      a = 50 + (tick++ % 2);
      snap.update(0, a);
      snap.update(1, 100 - a);
    }
  });
  {
    exec::ScopedPid pid(1);
    std::vector<std::uint32_t> indices{0, 1};
    for (int i = 0; i < 20000; ++i) {
      std::uint64_t sum = scan_sum(snap, indices);
      ASSERT_GE(sum, 99u);
      ASSERT_LE(sum, 101u);
    }
  }
  stop = true;
  owner.join();
}

TEST(AggregateDeathTest, MinMaxOfNothingRejected) {
  CasPartialSnapshot snap(2, 2);
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> none;
  EXPECT_DEATH((void)scan_min_max(snap, none), "needs components");
}

}  // namespace
}  // namespace psnap::core
