#include "primitives/primitives.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "exec/exec.h"

namespace psnap::primitives {
namespace {

using exec::ObjKind;

std::uint64_t reg_steps() {
  return exec::ctx().steps.by_kind[std::size_t(ObjKind::kRegister)];
}
std::uint64_t cas_steps() {
  return exec::ctx().steps.by_kind[std::size_t(ObjKind::kCas)];
}
std::uint64_t fai_steps() {
  return exec::ctx().steps.by_kind[std::size_t(ObjKind::kFai)];
}

TEST(Register, LoadStoreRoundTrip) {
  Register<std::uint64_t> reg(17);
  EXPECT_EQ(reg.load(), 17u);
  reg.store(42);
  EXPECT_EQ(reg.load(), 42u);
}

TEST(Register, ExchangeReturnsPrevious) {
  Register<std::uint64_t> reg(1);
  EXPECT_EQ(reg.exchange(2), 1u);
  EXPECT_EQ(reg.load(), 2u);
}

TEST(Register, EveryOperationIsOneStep) {
  Register<std::uint64_t> reg(0);
  exec::ctx().steps.reset();
  reg.store(1);
  (void)reg.load();
  (void)reg.exchange(2);
  EXPECT_EQ(reg_steps(), 3u);
  EXPECT_EQ(exec::ctx().steps.total, 3u);
}

TEST(Register, PeekIsNotAStep) {
  Register<std::uint64_t> reg(5);
  exec::ctx().steps.reset();
  EXPECT_EQ(reg.peek(), 5u);
  EXPECT_EQ(exec::ctx().steps.total, 0u);
}

TEST(Register, InitDoesNotStep) {
  Register<std::uint64_t> reg;
  exec::ctx().steps.reset();
  reg.init(9, 3);
  EXPECT_EQ(exec::ctx().steps.total, 0u);
  EXPECT_EQ(reg.peek(), 9u);
}

TEST(CasObject, SuccessfulCas) {
  CasObject<std::uint64_t> obj(10);
  EXPECT_EQ(obj.compare_and_swap(10, 20), 10u);  // returns previous
  EXPECT_EQ(obj.load(), 20u);
}

TEST(CasObject, FailedCasLeavesValue) {
  CasObject<std::uint64_t> obj(10);
  EXPECT_EQ(obj.compare_and_swap(99, 20), 10u);
  EXPECT_EQ(obj.load(), 10u);
}

TEST(CasObject, BoolForm) {
  CasObject<std::uint64_t> obj(1);
  EXPECT_TRUE(obj.compare_and_swap_bool(1, 2));
  EXPECT_FALSE(obj.compare_and_swap_bool(1, 3));
  EXPECT_EQ(obj.load(), 2u);
}

TEST(CasObject, StepsCounted) {
  CasObject<std::uint64_t> obj(0);
  exec::ctx().steps.reset();
  (void)obj.load();
  (void)obj.compare_and_swap(0, 1);
  EXPECT_EQ(cas_steps(), 2u);
}

TEST(FetchIncrement, ReturnsNewValue) {
  FetchIncrement fai;
  EXPECT_EQ(fai.fetch_increment(), 1u);
  EXPECT_EQ(fai.fetch_increment(), 2u);
  EXPECT_EQ(fai.read(), 2u);
}

TEST(FetchIncrement, InitialValueRespected) {
  FetchIncrement fai(100);
  EXPECT_EQ(fai.fetch_increment(), 101u);
}

TEST(FetchIncrement, StepsCounted) {
  FetchIncrement fai;
  exec::ctx().steps.reset();
  (void)fai.fetch_increment();
  (void)fai.read();
  EXPECT_EQ(fai_steps(), 2u);
}

TEST(FetchIncrement, ConcurrentIncrementsAreUnique) {
  FetchIncrement fai;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::vector<std::uint64_t>> values(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fai, &values, t] {
      values[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        values[t].push_back(fai.fetch_increment());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::uint64_t> all;
  for (auto& v : values) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 1);  // exactly 1..N, no duplicates, no gaps
  }
}

TEST(CasObject, ConcurrentCasExactlyOneWinnerPerRound) {
  CasObject<std::uint64_t> obj(0);
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        if (obj.compare_and_swap_bool(round, round + 1)) {
          wins.fetch_add(1);
        }
        // Wait for the round to complete before the next attempt.
        while (obj.peek() == round) std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kRounds);  // exactly one winner per round
  EXPECT_EQ(obj.peek(), std::uint64_t(kRounds));
}

TEST(Register, PointerSpecialization) {
  int x = 1, y = 2;
  Register<int*> reg(&x);
  EXPECT_EQ(reg.load(), &x);
  EXPECT_EQ(reg.exchange(&y), &x);
  EXPECT_EQ(reg.load(), &y);
}

// ---------------------------------------------------------------------------
// The Release runtime: identical semantics, zero instrumentation.
// ---------------------------------------------------------------------------

TEST(ReleasePolicy, OperationsAreNotSteps) {
  Register<std::uint64_t, Release> reg(1);
  CasObject<std::uint64_t, Release> obj(0);
  FetchIncrementT<Release> fai;
  exec::ctx().steps.reset();
  reg.store(2);
  (void)reg.load();
  (void)reg.exchange(3);
  (void)reg.peek();
  (void)obj.compare_and_swap(0, 1);
  (void)obj.load();
  (void)obj.peek();
  (void)fai.fetch_increment();
  (void)fai.read();
  (void)fai.peek();
  EXPECT_EQ(exec::ctx().steps.total, 0u);
}

TEST(ReleasePolicy, SemanticsMatchInstrumented) {
  Register<std::uint64_t, Release> reg(17);
  EXPECT_EQ(reg.load(), 17u);
  reg.store(42);
  EXPECT_EQ(reg.exchange(7), 42u);
  EXPECT_EQ(reg.peek(), 7u);

  CasObject<std::uint64_t, Release> obj(5);
  EXPECT_EQ(obj.compare_and_swap(4, 9), 5u);   // failure returns current
  EXPECT_EQ(obj.compare_and_swap(5, 9), 5u);   // success returns previous
  EXPECT_TRUE(obj.compare_and_swap_bool(9, 11));
  EXPECT_EQ(obj.peek(), 11u);

  FetchIncrementT<Release> fai(100);
  EXPECT_EQ(fai.fetch_increment(), 101u);
  EXPECT_EQ(fai.read(), 101u);
}

TEST(ReleasePolicy, ConcurrentFetchIncrementsAreUnique) {
  FetchIncrementT<Release> fai;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<std::uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kPerThread; ++k) {
        seen[t].push_back(fai.fetch_increment());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::uint64_t> all;
  for (auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i + 1);  // every value handed out exactly once
  }
}

}  // namespace
}  // namespace psnap::primitives
