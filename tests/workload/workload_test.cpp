#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/zipf.h"

namespace psnap::workload {
namespace {

TEST(ZipfSampler, UniformWhenThetaZero) {
  ZipfSampler zipf(10, 0.0);
  Xoshiro256 rng(1);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  for (auto& [rank, count] : counts) {
    EXPECT_LT(rank, 10u);
    EXPECT_NEAR(count, kSamples / 10, kSamples / 60);
  }
}

TEST(ZipfSampler, SkewFavoursLowRanks) {
  ZipfSampler zipf(100, 0.9);
  Xoshiro256 rng(2);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 must dominate rank 50 decisively.
  EXPECT_GT(counts[0], 20 * std::max(counts[50], 1));
}

TEST(ZipfSampler, AllSamplesInRange) {
  ZipfSampler zipf(7, 0.5);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 7u);
  }
}

TEST(ScanSetGenerator, UniformProducesDistinctSorted) {
  ScanSetGenerator gen(ScanSetKind::kUniform, 32, 6);
  Xoshiro256 rng(4);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 200; ++i) {
    gen.next(rng, out);
    ASSERT_EQ(out.size(), 6u);
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
    std::set<std::uint32_t> distinct(out.begin(), out.end());
    ASSERT_EQ(distinct.size(), 6u);
    for (auto c : out) ASSERT_LT(c, 32u);
  }
}

TEST(ScanSetGenerator, ContiguousProducesWindows) {
  ScanSetGenerator gen(ScanSetKind::kContiguous, 32, 4);
  Xoshiro256 rng(5);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 200; ++i) {
    gen.next(rng, out);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t j = 1; j < out.size(); ++j) {
      ASSERT_EQ(out[j], out[j - 1] + 1);
    }
    ASSERT_LT(out.back(), 32u);
  }
}

TEST(ScanSetGenerator, ZipfianDistinctAndSkewed) {
  ScanSetGenerator gen(ScanSetKind::kZipfian, 64, 3, 0.9);
  Xoshiro256 rng(6);
  std::vector<std::uint32_t> out;
  std::map<std::uint32_t, int> seen;
  for (int i = 0; i < 2000; ++i) {
    gen.next(rng, out);
    ASSERT_EQ(out.size(), 3u);
    std::set<std::uint32_t> distinct(out.begin(), out.end());
    ASSERT_EQ(distinct.size(), 3u);
    for (auto c : out) ++seen[c];
  }
  EXPECT_GT(seen[0], seen[40]);
}

TEST(OpStream, MixFractionRespected) {
  OpMix mix;
  mix.update_fraction = 0.25;
  mix.scan_r = 2;
  OpStream stream(mix, 16, 7);
  Op op;
  int updates = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    stream.next(op);
    if (op.is_update) {
      ++updates;
      EXPECT_LT(op.update_index, 16u);
    } else {
      EXPECT_EQ(op.scan_set.size(), 2u);
    }
  }
  EXPECT_NEAR(double(updates) / kOps, 0.25, 0.02);
}

TEST(OpStream, DeterministicPerSeed) {
  OpMix mix;
  OpStream a(mix, 8, 42), b(mix, 8, 42);
  Op op_a, op_b;
  for (int i = 0; i < 500; ++i) {
    a.next(op_a);
    b.next(op_b);
    ASSERT_EQ(op_a.is_update, op_b.is_update);
    if (op_a.is_update) {
      ASSERT_EQ(op_a.update_index, op_b.update_index);
    } else {
      ASSERT_EQ(op_a.scan_set, op_b.scan_set);
    }
  }
}

}  // namespace
}  // namespace psnap::workload
