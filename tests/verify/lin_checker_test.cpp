// The checker itself must be trustworthy: feed it handcrafted histories
// with known verdicts.
#include "verify/lin_checker.h"

#include <gtest/gtest.h>

namespace psnap::verify {
namespace {

Operation update(std::uint32_t pid, std::uint32_t index, std::uint64_t value,
                 std::uint64_t inv, std::uint64_t res) {
  Operation op;
  op.type = Operation::Type::kUpdate;
  op.pid = pid;
  op.index = index;
  op.value = value;
  op.invoke_seq = inv;
  op.respond_seq = res;
  return op;
}

Operation scan(std::uint32_t pid, std::vector<std::uint32_t> indices,
               std::vector<std::uint64_t> result, std::uint64_t inv,
               std::uint64_t res) {
  Operation op;
  op.type = Operation::Type::kScan;
  op.pid = pid;
  op.indices = std::move(indices);
  op.result = std::move(result);
  op.invoke_seq = inv;
  op.respond_seq = res;
  return op;
}

LinCheckOptions opts(std::uint32_t m) {
  LinCheckOptions o;
  o.num_components = m;
  return o;
}

TEST(LinChecker, EmptyHistoryIsLinearizable) {
  auto outcome = check_snapshot_linearizable({}, opts(2));
  EXPECT_EQ(outcome.result, LinResult::kLinearizable);
}

TEST(LinChecker, SequentialUpdateThenScan) {
  std::vector<Operation> ops{
      update(0, 0, 7, 0, 1),
      scan(1, {0}, {7}, 2, 3),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, ScanOfInitialValue) {
  std::vector<Operation> ops{
      scan(0, {0, 1}, {0, 0}, 0, 1),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(2)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, StaleReadAfterCompletedUpdateIsRejected) {
  // Update finished before the scan started, yet the scan saw the old
  // value: not linearizable.
  std::vector<Operation> ops{
      update(0, 0, 5, 0, 1),
      scan(1, {0}, {0}, 2, 3),
  };
  auto outcome = check_snapshot_linearizable(ops, opts(1));
  EXPECT_EQ(outcome.result, LinResult::kNotLinearizable);
  EXPECT_FALSE(outcome.diagnosis.empty());
}

TEST(LinChecker, ConcurrentUpdateMayOrMayNotBeSeen) {
  // Scan overlaps the update: both old and new value are acceptable.
  std::vector<Operation> old_seen{
      update(0, 0, 5, 0, 3),
      scan(1, {0}, {0}, 1, 2),
  };
  std::vector<Operation> new_seen{
      update(0, 0, 5, 0, 3),
      scan(1, {0}, {5}, 1, 2),
  };
  EXPECT_EQ(check_snapshot_linearizable(old_seen, opts(1)).result,
            LinResult::kLinearizable);
  EXPECT_EQ(check_snapshot_linearizable(new_seen, opts(1)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, TornScanRejected) {
  // Two sequential updates to different components; a scan that sees the
  // second update but not the first (which completed earlier) is torn.
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 1),  // component 0 := 1
      update(0, 1, 2, 2, 3),  // component 1 := 2
      scan(1, {0, 1}, {0, 2}, 4, 5),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(2)).result,
            LinResult::kNotLinearizable);
}

TEST(LinChecker, TornScanOfConcurrentUpdatesAccepted) {
  // Same shape but the updates overlap the scan: either order is valid, so
  // observing {0 -> initial, 1 -> 2} is fine (update0 linearizes after the
  // scan, update1 before).
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 9),
      update(1, 1, 2, 0, 9),
      scan(2, {0, 1}, {0, 2}, 0, 9),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(2)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, RealTimeOrderOfUpdatesRespected) {
  // p0 writes 1 then 2 sequentially to the same component; a later scan
  // must not see 1.
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 1),
      update(0, 0, 2, 2, 3),
      scan(1, {0}, {1}, 4, 5),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kNotLinearizable);
}

TEST(LinChecker, TwoScansMustAgreeOnOrder) {
  // Two concurrent updates to the same component; two sequential scans
  // that observe them in contradictory orders cannot both linearize.
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 9),
      update(1, 0, 2, 0, 9),
      scan(2, {0}, {1}, 1, 2),
      scan(2, {0}, {2}, 3, 4),
      scan(3, {0}, {2}, 1, 2),
      scan(3, {0}, {1}, 3, 4),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kNotLinearizable);
}

TEST(LinChecker, OppositeOrderScansRejectedEvenWhenConcurrent) {
  // The classic snapshot cycle: scan A = (1, 0) forces U0 < A < U1 and
  // scan B = (0, 1) forces U1 < B < U0 -- a contradiction regardless of
  // the scans being concurrent, because each scan is a single atomic
  // point.  (Piecewise reads would happily produce this pair; a snapshot
  // object must not.)
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 9),
      update(1, 1, 1, 0, 9),
      scan(2, {0, 1}, {1, 0}, 0, 9),
      scan(3, {0, 1}, {0, 1}, 0, 9),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(2)).result,
            LinResult::kNotLinearizable);
}

TEST(LinChecker, ChainAcrossComponentsSequentialContradiction) {
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 9),
      update(1, 1, 1, 0, 9),
      scan(2, {0, 1}, {1, 0}, 1, 2),
      // This scan STARTS after the first scan responded, and claims the
      // opposite order of the two updates: impossible.
      scan(2, {0, 1}, {0, 1}, 3, 4),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(2)).result,
            LinResult::kNotLinearizable);
}

TEST(LinChecker, DuplicateValuesDistinguishedByInterval) {
  // Same value written twice; scans are still checkable.
  std::vector<Operation> ops{
      update(0, 0, 5, 0, 1),
      update(0, 0, 5, 2, 3),
      scan(1, {0}, {5}, 4, 5),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, PartialScanSubsetOnly) {
  // Scans over different subsets of a 3-component object.
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 1),
      update(0, 2, 3, 2, 3),
      scan(1, {0, 2}, {1, 3}, 4, 5),
      scan(1, {1}, {0}, 6, 7),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(3)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, NodesVisitedReported) {
  std::vector<Operation> ops{
      update(0, 0, 1, 0, 1),
      scan(1, {0}, {1}, 2, 3),
  };
  auto outcome = check_snapshot_linearizable(ops, opts(1));
  EXPECT_GT(outcome.nodes_visited, 0u);
}

TEST(LinChecker, PendingUpdateMayBeOmitted) {
  // A crashed update whose effect never became visible: scans may see the
  // old value forever.
  Operation pending = update(0, 0, 7, 0, 1);
  pending.respond_seq = kPending;
  std::vector<Operation> ops{pending, scan(1, {0}, {0}, 2, 3)};
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, PendingUpdateMayTakeEffect) {
  // A crashed update whose write did land: scans may see the new value.
  Operation pending = update(0, 0, 7, 0, 1);
  pending.respond_seq = kPending;
  std::vector<Operation> ops{pending, scan(1, {0}, {7}, 2, 3)};
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kLinearizable);
}

TEST(LinChecker, PendingUpdateCannotFlipFlop) {
  // Once a later scan observed the pending update's value, an even later
  // scan cannot revert to the old value.
  Operation pending = update(0, 0, 7, 0, 1);
  pending.respond_seq = kPending;
  std::vector<Operation> ops{
      pending,
      scan(1, {0}, {7}, 2, 3),
      scan(1, {0}, {0}, 4, 5),
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kNotLinearizable);
}

TEST(LinChecker, PendingUpdateCannotTakeEffectBeforeInvocation) {
  // A scan that completed before the crashed update was even invoked must
  // not see its value.
  Operation pending = update(0, 0, 7, 4, 5);
  pending.respond_seq = kPending;
  std::vector<Operation> ops{
      scan(1, {0}, {7}, 0, 1),
      pending,
  };
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kNotLinearizable);
}

TEST(LinChecker, PendingScanIsIgnored) {
  Operation pending_scan = scan(1, {0}, {}, 0, 1);
  pending_scan.respond_seq = kPending;
  pending_scan.result.clear();
  std::vector<Operation> ops{update(0, 0, 1, 2, 3), pending_scan};
  EXPECT_EQ(check_snapshot_linearizable(ops, opts(1)).result,
            LinResult::kLinearizable);
}

TEST(LinCheckerDeathTest, TooManyOperationsRejected) {
  std::vector<Operation> ops;
  for (int i = 0; i < 65; ++i) {
    ops.push_back(update(0, 0, 1, 2 * i, 2 * i + 1));
  }
  EXPECT_DEATH(check_snapshot_linearizable(ops, opts(1)), "64");
}

}  // namespace
}  // namespace psnap::verify
