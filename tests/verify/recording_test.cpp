// The recording decorators and the History's pid-reuse lanes
// (verify/history.h): ThreadRegistry hands released pids to new logical
// threads, so a History must keep operations from distinct holders of one
// pid in distinct LANES -- merging them would let per-thread checkers
// (epoch monotonicity, batch pairing) see a program order that never
// existed.
#include "verify/recording.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "exec/exec.h"
#include "registry/registry.h"
#include "verify/history.h"

namespace psnap::verify {
namespace {

TEST(Recording, PidReuseOpensANewLane) {
  exec::ScopedPid pid(0);
  auto snap = registry::make_snapshot("fig3_cas", 4, 2);
  History history;
  RecordingSnapshot rec(*snap, history);

  // First holder of pid 0.
  rec.update(0, 1);
  (void)rec.scan({0});

  // The holder releases its pid; a new logical thread acquires it.
  history.note_pid_released(0);
  rec.update(1, 2);

  // And a third holder after another release.
  history.note_pid_released(0);
  (void)rec.scan({0, 1});

  std::vector<Operation> ops = history.operations();
  ASSERT_EQ(ops.size(), 4u);
  for (const Operation& op : ops) EXPECT_EQ(op.pid, 0u);

  // Same pid, three distinct lanes with the expected grouping.
  EXPECT_EQ(ops[0].lane(), ops[1].lane());
  EXPECT_NE(ops[1].lane(), ops[2].lane());
  EXPECT_NE(ops[2].lane(), ops[3].lane());
  std::set<std::uint64_t> lanes;
  for (const Operation& op : ops) lanes.insert(op.lane());
  EXPECT_EQ(lanes.size(), 3u);

  // Incarnations count holders in order.
  EXPECT_EQ(ops[0].incarnation, 0u);
  EXPECT_EQ(ops[2].incarnation, 1u);
  EXPECT_EQ(ops[3].incarnation, 2u);
}

TEST(Recording, ReleaseOfOnePidLeavesOtherLanesAlone) {
  auto snap = registry::make_snapshot("fig3_cas", 4, 3);
  History history;
  RecordingSnapshot rec(*snap, history);

  {
    exec::ScopedPid pid(0);
    rec.update(0, 1);
  }
  {
    exec::ScopedPid pid(1);
    rec.update(1, 2);
  }
  history.note_pid_released(0);
  {
    exec::ScopedPid pid(0);
    rec.update(2, 3);
  }
  {
    exec::ScopedPid pid(1);
    rec.update(3, 4);
  }

  std::vector<Operation> ops = history.operations();
  ASSERT_EQ(ops.size(), 4u);
  // pid 0's lane split at the release...
  EXPECT_NE(ops[0].lane(), ops[2].lane());
  // ...while pid 1's lane is untouched by pid 0's churn.
  EXPECT_EQ(ops[1].lane(), ops[3].lane());
}

TEST(Recording, ActiveSetOperationsCarryLanesToo) {
  exec::ScopedPid pid(0);
  auto set = registry::make_active_set("faicas", 3);
  History history;
  RecordingActiveSet rec(*set, history);

  rec.join();
  rec.leave();
  history.note_pid_released(0);
  rec.join();
  std::vector<std::uint32_t> out;
  rec.get_set(out);
  rec.leave();

  std::vector<Operation> ops = history.operations();
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0].lane(), ops[1].lane());
  EXPECT_NE(ops[1].lane(), ops[2].lane());
  EXPECT_EQ(ops[2].lane(), ops[4].lane());
}

}  // namespace
}  // namespace psnap::verify
