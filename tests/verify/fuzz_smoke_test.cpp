// Smoke coverage for the fuzzing engine over the REAL implementations:
// a small campaign across every enumerated target must come back clean
// (no false positives -- a failure here is either a genuine protocol bug
// or a fuzzer bug, both stop-the-line), and the pinned regression corpus
// must replay clean and keep the op shapes it was pinned for.
#include "verify/fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "verify/fuzz/corpus.h"
#include "verify/fuzz/plan.h"
#include "verify/fuzz/target.h"
#include "verify/fuzz/token.h"

namespace psnap::verify::fuzz {
namespace {

TEST(FuzzSmoke, SmallCampaignOverAllTargetsIsClean) {
  std::vector<FuzzTarget> targets = enumerate_targets();
  ASSERT_FALSE(targets.empty());

  CampaignOptions options;
  options.base_seed = 42;
  options.iters_per_target = 3;
  options.pinned_tokens = pinned_corpus();
  std::vector<std::string> failures;
  CampaignStats stats = run_campaign(targets, options,
                                     [&](const FailingCase& failing) {
                                       failures.push_back(
                                           failing.minimal_summary());
                                     });
  EXPECT_EQ(stats.failures, 0u) << failures.front();
  EXPECT_GT(stats.cases_run, targets.size());
}

TEST(FuzzSmoke, PinnedCorpusReplaysClean) {
  for (const std::string& token : pinned_corpus()) {
    FailingCase failing;
    EXPECT_FALSE(replay_token(token, &failing))
        << "pinned token now fails: " << token << "\n"
        << failing.minimal_summary();
  }
}

bool plan_has(const FuzzPlan& plan, FuzzOp::Kind kind) {
  for (const std::vector<FuzzOp>& proc : plan.procs) {
    for (const FuzzOp& op : proc) {
      if (op.kind == kind) return true;
    }
  }
  return false;
}

FuzzPlan plan_of(const std::string& token) {
  CaseSpec spec = decode_token(token);
  return generate_plan(spec.target, spec.shape, spec.op_seed);
}

TEST(FuzzSmoke, PinnedCorpusKeepsItsShapes) {
  // The corpus pins SHAPES, not just seeds: each token was chosen because
  // its plan exercises a specific historically tricky interleaving class.
  // Generator changes that reshuffle what a seed produces must re-pin.
  FuzzPlan dekker = plan_of(kPinnedAsetDekker);
  EXPECT_TRUE(plan_has(dekker, FuzzOp::Kind::kJoin))
      << "Dekker seed lost its join ops:\n" << dekker.to_string();
  EXPECT_TRUE(plan_has(dekker, FuzzOp::Kind::kGetSet))
      << "Dekker seed lost its getSet ops:\n" << dekker.to_string();
  EXPECT_GE(dekker.procs.size(), 2u);

  FuzzPlan batched = plan_of(kPinnedSnapBatchedScan);
  EXPECT_TRUE(plan_has(batched, FuzzOp::Kind::kUpdateBatch))
      << batched.to_string();
  EXPECT_TRUE(plan_has(batched, FuzzOp::Kind::kScanVersioned))
      << batched.to_string();

  FuzzPlan growth = plan_of(kPinnedSnapGrowth);
  EXPECT_TRUE(plan_has(growth, FuzzOp::Kind::kGrow)) << growth.to_string();
  EXPECT_TRUE(plan_has(growth, FuzzOp::Kind::kScan)) << growth.to_string();

  // The loser-stamp pins need racing updates against a reader (singleton
  // flavor) and a batch racing a versioned scan (batch flavor) to keep
  // reproducing the try-once-CAS-vs-lazy-stamping class.
  FuzzPlan loser = plan_of(kPinnedSnapLoserStamp);
  EXPECT_TRUE(plan_has(loser, FuzzOp::Kind::kUpdate)) << loser.to_string();
  EXPECT_TRUE(plan_has(loser, FuzzOp::Kind::kScan)) << loser.to_string();
  EXPECT_GE(loser.procs.size(), 2u);

  FuzzPlan loser_batch = plan_of(kPinnedSnapLoserStampBatch);
  EXPECT_TRUE(plan_has(loser_batch, FuzzOp::Kind::kUpdateBatch))
      << loser_batch.to_string();
  EXPECT_TRUE(plan_has(loser_batch, FuzzOp::Kind::kScanVersioned))
      << loser_batch.to_string();
}

TEST(FuzzSmoke, TokensRoundTripThroughTheCodec) {
  for (const std::string& token : pinned_corpus()) {
    CaseSpec spec = decode_token(token);
    EXPECT_EQ(encode_token(spec), token);
  }
}

}  // namespace
}  // namespace psnap::verify::fuzz
