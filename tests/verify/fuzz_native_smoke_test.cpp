// Native-thread smoke over the pinned fuzz corpus, per reclamation plane.
//
// The fuzz campaign runs its plans under the deterministic SimScheduler,
// where the linearizability checker is the main oracle.  This suite takes
// the SAME pinned plans (corpus.h -- each one a schedule class that once
// needed a hand-written test) and executes them on REAL std::threads.
// Native interleavings are not replayable, so the lin checker is out of
// scope here; what real threads buy is real memory reclamation -- epochs
// actually advancing, hazard scans actually racing retirements -- under
// op mixes the generator chose adversarially.  The oracles that remain
// sound without a schedule are exactly the per-plane ones:
//
//   * camera epochs strictly increase per lane and across real-time
//     ordered scans (versioned plane);
//   * add_components blocks are disjoint and account for the final
//     component count (growth);
//   * Section 2.1 validity for active-set histories;
//   * no operation throws or crashes.
//
// Every snapshot plan runs once per supported reclamation plane
// (reclaim=ebr and reclaim=hp twins of the same spec), so the hazard
// path sees the corpus too -- on real threads, where its protect/validate
// loops actually race.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.h"
#include "exec/thread_registry.h"
#include "ingest/coalescer.h"
#include "registry/registry.h"
#include "verify/activeset_checker.h"
#include "verify/fuzz/corpus.h"
#include "verify/fuzz/oracles.h"
#include "verify/fuzz/plan.h"
#include "verify/fuzz/token.h"
#include "verify/history.h"
#include "verify/recording.h"

namespace psnap::verify::fuzz {
namespace {

// Interleaving variety comes from repetition, not from a schedule knob.
constexpr int kRepsPerCase = 16;

struct NativeRun {
  std::vector<Operation> ops;
  std::uint32_t final_m = 0;
  std::string error;  // first exception message, empty when clean
};

// Mirrors the sim runner's churn: hand this thread's pid back to the
// case-local registry and take a fresh one (lowest-free, so reuse is
// common -- the incarnation lanes must keep the holders apart).
void churn_pid(exec::ThreadRegistry& reg, History& history) {
  std::uint32_t old = exec::ctx().pid;
  reg.release(old);
  history.note_pid_released(old);
  std::uint32_t fresh = reg.acquire();
  exec::ThreadRegistry::process_wide().note_pid_in_use(fresh);
  exec::ctx().pid = fresh;
}

struct RunError {
  std::mutex mu;
  std::string what;
  void capture(const std::exception& e) {
    std::scoped_lock lock(mu);
    if (what.empty()) what = e.what();
  }
};

NativeRun run_snapshot_plan_native(const FuzzTarget& target,
                                   const FuzzPlan& plan) {
  NativeRun result;
  const std::uint32_t procs = static_cast<std::uint32_t>(plan.procs.size());
  const std::uint32_t max_threads = procs * 2 + 2;

  registry::IngestKnobs knobs;
  auto snap = registry::make_snapshot(target.spec, plan.initial_m,
                                      max_threads, &knobs);
  History history;
  RecordingSnapshot recorded(*snap, history);
  exec::ThreadRegistry churn_reg(max_threads);
  for (std::uint32_t p = 0; p < procs; ++p) churn_reg.acquire();
  RunError error;

  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < procs; ++p) {
    threads.emplace_back([&, p] {
      exec::ScopedPid pid(p);
      try {
        std::optional<ingest::Coalescer> co;
        if (target.coalesced) {
          ingest::Coalescer::Options co_options;
          co_options.batch = knobs.batch;
          co_options.coalesce_window = knobs.coalesce_window;
          co.emplace(recorded, std::move(co_options));
        }
        std::vector<std::uint64_t> out;
        for (const FuzzOp& op : plan.procs[p]) {
          switch (op.kind) {
            case FuzzOp::Kind::kUpdate:
              if (co) {
                co->write(op.index, op.value);
              } else {
                recorded.update(op.index, op.value);
              }
              break;
            case FuzzOp::Kind::kUpdateBlob: {
              std::array<std::byte, 8> buf;
              std::memcpy(buf.data(), &op.value, sizeof(op.value));
              recorded.update_blob(
                  op.index, std::span<const std::byte>(buf.data(), 8));
              break;
            }
            case FuzzOp::Kind::kUpdateBatch:
              recorded.update_batch(std::span<const core::BatchEntry>(
                  op.entries.data(), op.entries.size()));
              break;
            case FuzzOp::Kind::kScan:
              recorded.scan(std::span<const std::uint32_t>(op.indices), out);
              break;
            case FuzzOp::Kind::kScanVersioned:
              recorded.scan_versioned(
                  std::span<const std::uint32_t>(op.indices), out);
              break;
            case FuzzOp::Kind::kGrow:
              recorded.add_components(op.count);
              break;
            case FuzzOp::Kind::kChurn:
              if (co) co->flush();
              churn_pid(churn_reg, history);
              break;
            default:
              break;
          }
        }
        if (co) {
          co->flush();
          co.reset();
        }
      } catch (const std::exception& e) {
        error.capture(e);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  result.error = error.what;
  result.final_m = snap->num_components();
  result.ops = history.operations();
  return result;
}

NativeRun run_active_set_plan_native(const FuzzTarget& target,
                                     const FuzzPlan& plan) {
  NativeRun result;
  const std::uint32_t procs = static_cast<std::uint32_t>(plan.procs.size());
  const std::uint32_t max_threads = procs * 2 + 2;

  auto as = registry::make_active_set(target.spec, max_threads);
  History history;
  RecordingActiveSet recorded(*as, history);
  exec::ThreadRegistry churn_reg(max_threads);
  for (std::uint32_t p = 0; p < procs; ++p) churn_reg.acquire();
  RunError error;

  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < procs; ++p) {
    threads.emplace_back([&, p] {
      exec::ScopedPid pid(p);
      try {
        std::vector<std::uint32_t> out;
        for (const FuzzOp& op : plan.procs[p]) {
          switch (op.kind) {
            case FuzzOp::Kind::kJoin:
              recorded.join();
              break;
            case FuzzOp::Kind::kLeave:
              recorded.leave();
              break;
            case FuzzOp::Kind::kGetSet:
              recorded.get_set(out);
              break;
            case FuzzOp::Kind::kChurn:
              churn_pid(churn_reg, history);
              break;
            default:
              break;
          }
        }
      } catch (const std::exception& e) {
        error.capture(e);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  result.error = error.what;
  result.ops = history.operations();
  return result;
}

// Appends options to a spec that may or may not already carry some.
std::string with_options(const std::string& spec, const std::string& extra) {
  return spec + (spec.find(':') == std::string::npos ? ":" : ",") + extra;
}

// A pinned snapshot token expanded to one reclamation plane: the original
// spec with reclaim=<plane> appended, plus the plan its seeds regenerate.
struct NativeCase {
  std::string token;   // the pin it came from, for diagnostics
  FuzzTarget target;   // spec extended with reclaim=<plane>
  FuzzPlan plan;
};

TEST(FuzzNativeSmokeTest, PinnedSnapshotPlansPassPlaneOraclesPerReclaimPlane) {
  std::vector<NativeCase> cases;
  for (const std::string& token : pinned_corpus()) {
    CaseSpec spec;
    try {
      spec = decode_token(token);
    } catch (const std::invalid_argument&) {
      continue;
    }
    if (spec.target.kind != FuzzTarget::Kind::kSnapshot) continue;
    auto [name, opts] = registry::split_spec(spec.target.spec);
    const registry::SnapshotInfo* info =
        registry::SnapshotRegistry::instance().find(name);
    ASSERT_NE(info, nullptr) << token;
    for (const char* plane : {"ebr", "hp"}) {
      if (!registry::reclaim_plane_supported(info->reclaims, plane)) continue;
      FuzzTarget target = target_from_spec(
          FuzzTarget::Kind::kSnapshot,
          with_options(spec.target.spec, std::string("reclaim=") + plane));
      cases.push_back(
          {token, target, generate_plan(target, spec.shape, spec.op_seed)});
    }
  }
  // Every pinned snapshot token names a fig3_cas-family spec, all of which
  // grew hp support in this PR -- each pin must fan out to both planes.
  ASSERT_GE(cases.size(), 2u) << "corpus lost its snapshot pins";
  for (const NativeCase& c : cases) {
    const std::string label = c.token + " as " + c.target.spec;
    for (int rep = 0; rep < kRepsPerCase; ++rep) {
      NativeRun run = run_snapshot_plan_native(c.target, c.plan);
      ASSERT_EQ(run.error, "") << label;
      OracleOutcome epochs = check_epochs(run.ops);
      EXPECT_TRUE(epochs.ok) << label << ": " << epochs.diagnosis;
      OracleOutcome growth =
          check_growth(run.ops, c.plan.initial_m, run.final_m);
      EXPECT_TRUE(growth.ok) << label << ": " << growth.diagnosis;
    }
  }
}

TEST(FuzzNativeSmokeTest, PinnedActiveSetPlansPassValidityOnRealThreads) {
  int ran = 0;
  for (const std::string& token : pinned_corpus()) {
    CaseSpec spec;
    try {
      spec = decode_token(token);
    } catch (const std::invalid_argument&) {
      continue;
    }
    if (spec.target.kind != FuzzTarget::Kind::kActiveSet) continue;
    FuzzPlan plan = generate_plan(spec.target, spec.shape, spec.op_seed);
    for (int rep = 0; rep < kRepsPerCase; ++rep) {
      NativeRun run = run_active_set_plan_native(spec.target, plan);
      ASSERT_EQ(run.error, "") << token;
      auto validity = check_active_set_validity(run.ops);
      EXPECT_TRUE(validity.ok) << token << ": " << validity.diagnosis;
    }
    ++ran;
  }
  EXPECT_GE(ran, 1) << "corpus lost its active-set pin";
}

}  // namespace
}  // namespace psnap::verify::fuzz
