#include "verify/history.h"

#include <gtest/gtest.h>

#include <thread>

namespace psnap::verify {
namespace {

TEST(History, SequenceNumbersIncrease) {
  History h;
  Operation op;
  op.type = Operation::Type::kUpdate;
  auto h1 = h.begin_op(op);
  auto h2 = h.begin_op(op);
  h.complete_op(h1);
  h.complete_op(h2);
  auto ops = h.operations();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_LT(ops[0].invoke_seq, ops[1].invoke_seq);
  EXPECT_LT(ops[1].invoke_seq, ops[0].respond_seq);
  EXPECT_LT(ops[0].respond_seq, ops[1].respond_seq);
}

TEST(History, PendingUntilCompleted) {
  History h;
  Operation op;
  op.type = Operation::Type::kJoin;
  auto handle = h.begin_op(op);
  EXPECT_FALSE(h.operations()[0].complete());
  h.complete_op(handle);
  EXPECT_TRUE(h.operations()[0].complete());
}

TEST(History, ScanResultAttachedAtResponse) {
  History h;
  Operation op;
  op.type = Operation::Type::kScan;
  op.indices = {1, 2};
  auto handle = h.begin_op(op);
  h.complete_scan(handle, {10, 20});
  auto ops = h.operations();
  EXPECT_EQ(ops[0].result, (std::vector<std::uint64_t>{10, 20}));
}

TEST(History, GetSetResultAttachedAtResponse) {
  History h;
  Operation op;
  op.type = Operation::Type::kGetSet;
  auto handle = h.begin_op(op);
  h.complete_get_set(handle, {3, 5});
  EXPECT_EQ(h.operations()[0].set_result, (std::vector<std::uint32_t>{3, 5}));
}

TEST(History, ToStringContainsOps) {
  History h;
  Operation op;
  op.type = Operation::Type::kUpdate;
  op.pid = 3;
  op.index = 1;
  op.value = 9;
  h.complete_op(h.begin_op(op));
  std::string s = h.to_string();
  EXPECT_NE(s.find("p3 update(1, 9)"), std::string::npos);
}

TEST(History, ConcurrentRecordingIsSafe) {
  History h;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kOps; ++i) {
        Operation op;
        op.type = Operation::Type::kUpdate;
        op.pid = static_cast<std::uint32_t>(t);
        h.complete_op(h.begin_op(op));
      }
    });
  }
  for (auto& th : threads) th.join();
  auto ops = h.operations();
  ASSERT_EQ(ops.size(), std::size_t(kThreads) * kOps);
  for (const auto& op : ops) {
    EXPECT_TRUE(op.complete());
    EXPECT_LT(op.invoke_seq, op.respond_seq);
  }
}

TEST(OperationToString, ScanFormat) {
  Operation op;
  op.type = Operation::Type::kScan;
  op.pid = 1;
  op.indices = {0, 2};
  op.result = {5, 7};
  op.invoke_seq = 3;
  op.respond_seq = 9;
  EXPECT_EQ(op.to_string(), "p1 scan(0,2) -> (5,7) [3, 9]");
}

}  // namespace
}  // namespace psnap::verify
