// Mutation suite: the fuzzer must DETECT each deliberately broken
// implementation (experimental/mutants.h) within a bounded budget, and the
// failure must replay deterministically -- two replays of the same token
// shrink to byte-identical minimal counterexamples.  This is the
// calibration check for the whole verification layer: a checker/oracle
// change that stops catching a seeded bug fails here, not in the field.
#include "verify/fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experimental/mutants.h"
#include "registry/registry.h"
#include "verify/fuzz/target.h"

namespace psnap::verify::fuzz {
namespace {

// The registry is process-wide; register the mutants exactly once no
// matter how many tests run.
void ensure_mutants_registered() {
  static const bool once = [] {
    experimental::register_mutant_snapshots(
        registry::SnapshotRegistry::instance());
    return true;
  }();
  (void)once;
}

std::vector<FuzzTarget> targets_for(const std::string& mutant) {
  ensure_mutants_registered();
  std::vector<FuzzTarget> targets;
  for (FuzzTarget& target : enumerate_snapshot_targets()) {
    if (target.spec.rfind(mutant + ":", 0) == 0) {
      targets.push_back(std::move(target));
    }
  }
  return targets;
}

// Budget matching the CI gate: 40 generated cases per target.  Every
// mutant falls well inside it (most are caught in the first handful of
// cases); the bound is what makes "escaped" a hard verdict.
FailingCase detect(const std::string& mutant) {
  std::vector<FuzzTarget> targets = targets_for(mutant);
  EXPECT_FALSE(targets.empty()) << mutant << " is not registered";
  CampaignOptions options;
  options.base_seed = 7;
  options.iters_per_target = 40;
  options.max_failures = 1;
  std::vector<FailingCase> failures;
  run_campaign(targets, options, [&](const FailingCase& failing) {
    failures.push_back(failing);
  });
  EXPECT_FALSE(failures.empty())
      << "mutant " << mutant << " escaped a 40-case-per-target campaign";
  return failures.empty() ? FailingCase{} : failures.front();
}

void expect_deterministic_replay(const FailingCase& failing) {
  if (failing.token.empty()) return;  // detection already failed above
  FailingCase first, second;
  ASSERT_TRUE(replay_token(failing.token, &first)) << failing.token;
  ASSERT_TRUE(replay_token(failing.token, &second)) << failing.token;
  EXPECT_EQ(first.minimal_summary(), second.minimal_summary());
  // The campaign's own shrink and a fresh replay agree too: the minimal
  // counterexample is a pure function of the token.
  EXPECT_EQ(failing.minimal_summary(), first.minimal_summary());
}

TEST(FuzzMutation, DetectsTornScans) {
  FailingCase failing = detect("mut_torn_scan");
  EXPECT_NE(failing.minimal_diagnosis.find("linearizability"),
            std::string::npos)
      << failing.minimal_diagnosis;
  expect_deterministic_replay(failing);
}

TEST(FuzzMutation, DetectsSkippedHelping) {
  FailingCase failing = detect("mut_skipped_helping");
  EXPECT_NE(failing.minimal_diagnosis.find("linearizability"),
            std::string::npos)
      << failing.minimal_diagnosis;
  expect_deterministic_replay(failing);
}

TEST(FuzzMutation, DetectsTornBatches) {
  FailingCase failing = detect("mut_torn_batch");
  // Caught by the linearizability check over the ATOMIC batch expansion:
  // the mutant claims kAtomic but applies entry-wise.
  EXPECT_NE(failing.minimal_diagnosis.find("linearizability"),
            std::string::npos)
      << failing.minimal_diagnosis;
  expect_deterministic_replay(failing);
}

TEST(FuzzMutation, DetectsStaleEpochs) {
  FailingCase failing = detect("mut_stale_epoch");
  EXPECT_NE(failing.minimal_diagnosis.find("epoch"), std::string::npos)
      << failing.minimal_diagnosis;
  expect_deterministic_replay(failing);
}

TEST(FuzzMutation, ShrunkCounterexamplesStayMinimalInOpCount) {
  // Shrinking is greedy, not optimal, but the torn-scan bug needs only
  // one writer and one scanner; anything bigger means shrinking regressed.
  FailingCase failing = detect("mut_torn_scan");
  ASSERT_FALSE(failing.token.empty());
  EXPECT_LE(failing.minimal_plan.procs.size(), 2u)
      << failing.minimal_summary();
  EXPECT_LE(failing.minimal_plan.total_ops(), 6u)
      << failing.minimal_summary();
}

}  // namespace
}  // namespace psnap::verify::fuzz
