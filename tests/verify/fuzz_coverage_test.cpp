// Coverage assertion for the fuzz target enumeration (verify/fuzz/target.h):
// every sim-safe registry entry, on every plane it supports, with a
// coalescing ingest variant for every batch-capable combo, appears exactly
// once.  The expected set is recomputed here straight from the registries
// -- no hand-curated impl tables -- so registering a new implementation
// without fuzz coverage fails this test, not code review.
#include "verify/fuzz/target.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "registry/registry.h"

namespace psnap::verify::fuzz {
namespace {

std::vector<std::string> planes_of(const std::string& values) {
  std::vector<std::string> planes;
  std::size_t pos = 0;
  while (pos <= values.size()) {
    std::size_t comma = values.find(',', pos);
    if (comma == std::string::npos) comma = values.size();
    planes.push_back(values.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return planes;
}

TEST(FuzzCoverage, EverySimSafeImplPlaneAndKnobComboIsEnumerated) {
  std::set<std::string> expected;
  for (const registry::SnapshotInfo* info :
       registry::SnapshotRegistry::instance().all()) {
    if (!info->sim_safe) continue;
    for (const std::string& plane : planes_of(info->values)) {
      expected.insert("snap " + info->name + ":value=" + plane);
      if (info->supports_batch) {
        expected.insert("snap " + info->name + ":value=" + plane +
                        ",batch=3,coalesce_window=6");
      }
    }
  }
  for (const registry::ActiveSetInfo* info :
       registry::ActiveSetRegistry::instance().all()) {
    if (!info->sim_safe) continue;
    expected.insert("aset " + std::string(info->name));
  }

  std::set<std::string> actual;
  for (const FuzzTarget& target : enumerate_targets()) {
    EXPECT_TRUE(actual.insert(target.display()).second)
        << "duplicate fuzz target: " << target.display();
  }

  for (const std::string& spec : expected) {
    EXPECT_TRUE(actual.count(spec)) << "registry combo not fuzzed: " << spec;
  }
  for (const std::string& spec : actual) {
    EXPECT_TRUE(expected.count(spec))
        << "fuzz target not derived from the registry: " << spec;
  }
  // The seed registries alone yield dozens of combos; a collapsed
  // enumeration (e.g. only default planes) cannot reach this floor.
  EXPECT_GE(actual.size(), 30u);
}

TEST(FuzzCoverage, CapabilityFlagsMatchTheRegistryEntry) {
  for (const FuzzTarget& target : enumerate_targets()) {
    if (target.kind != FuzzTarget::Kind::kSnapshot) continue;
    auto [name, opts] = registry::split_spec(target.spec);
    const registry::SnapshotInfo* info =
        registry::SnapshotRegistry::instance().find(name);
    ASSERT_NE(info, nullptr) << target.spec;
    EXPECT_EQ(target.supports_batch, info->supports_batch) << target.spec;
    EXPECT_EQ(target.versioned,
              target.spec.find("value=versioned") != std::string::npos)
        << target.spec;
    EXPECT_EQ(target.coalesced,
              target.spec.find("batch=") != std::string::npos)
        << target.spec;
  }
}

TEST(FuzzCoverage, TargetFromSpecRebuildsEnumeratedTargets) {
  // Token replay rebuilds targets from their spec alone; the rebuilt
  // capability flags must agree with the enumerated original, or a token
  // would fuzz a different op mix than the campaign that minted it.
  for (const FuzzTarget& target : enumerate_targets()) {
    FuzzTarget rebuilt = target_from_spec(target.kind, target.spec);
    EXPECT_EQ(rebuilt.spec, target.spec);
    EXPECT_EQ(rebuilt.supports_batch, target.supports_batch) << target.spec;
    EXPECT_EQ(rebuilt.versioned, target.versioned) << target.spec;
    EXPECT_EQ(rebuilt.blob, target.blob) << target.spec;
    EXPECT_EQ(rebuilt.coalesced, target.coalesced) << target.spec;
  }
}

}  // namespace
}  // namespace psnap::verify::fuzz
