#include "verify/realtime_checker.h"

#include <gtest/gtest.h>

namespace psnap::verify {
namespace {

using Scan = RealtimeChecker::ScanObservation;

TEST(RealtimeChecker, ConsistentScanAccepted) {
  RealtimeChecker checker(2);
  // comp 0: value 1 written during [10, 20]
  checker.record_write_begin(0, 1, 10);
  checker.record_write_end(0, 1, 20);
  // comp 1: value 1 written during [15, 25]
  checker.record_write_begin(1, 1, 15);
  checker.record_write_end(1, 1, 25);
  // Scan in [30, 40] sees both values: fine.
  Scan scan{30, 40, {0, 1}, {1, 1}};
  EXPECT_TRUE(checker.check({scan}).ok);
}

TEST(RealtimeChecker, InitialValuesAccepted) {
  RealtimeChecker checker(2);
  Scan scan{5, 6, {0, 1}, {0, 0}};
  EXPECT_TRUE(checker.check({scan}).ok);
}

TEST(RealtimeChecker, TornScanDetected) {
  RealtimeChecker checker(2);
  // comp 0: value 1 at [10,11], value 2 at [20,21]  (value 1 gone by 21)
  checker.record_write_begin(0, 1, 10);
  checker.record_write_end(0, 1, 11);
  checker.record_write_begin(0, 2, 20);
  checker.record_write_end(0, 2, 21);
  // comp 1: value 1 at [30,31]  (value 1 not present before 30)
  checker.record_write_begin(1, 1, 30);
  checker.record_write_end(1, 1, 31);
  // A scan claiming comp0==1 (gone by t=21) and comp1==1 (born at t>=30):
  // impossible at any single instant.
  Scan scan{5, 50, {0, 1}, {1, 1}};
  auto outcome = checker.check({scan});
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.diagnosis.find("torn"), std::string::npos);
}

TEST(RealtimeChecker, StaleValueOutsideScanIntervalDetected) {
  RealtimeChecker checker(1);
  checker.record_write_begin(0, 1, 10);
  checker.record_write_end(0, 1, 11);
  checker.record_write_begin(0, 2, 20);
  checker.record_write_end(0, 2, 21);
  // Scan starts at 30, after value 2 certainly replaced value 1, but
  // claims to have seen value 1.
  Scan scan{30, 35, {0}, {1}};
  EXPECT_FALSE(checker.check({scan}).ok);
}

TEST(RealtimeChecker, FutureValueBeforeWriteDetected) {
  RealtimeChecker checker(1);
  checker.record_write_begin(0, 1, 50);
  checker.record_write_end(0, 1, 60);
  // Scan completed before the write began yet saw the value.
  Scan scan{10, 20, {0}, {1}};
  EXPECT_FALSE(checker.check({scan}).ok);
}

TEST(RealtimeChecker, OverlapUncertaintyAccepted) {
  // When windows genuinely overlap, the checker must accept -- it is
  // deliberately sound, not complete.
  RealtimeChecker checker(2);
  checker.record_write_begin(0, 1, 10);
  checker.record_write_end(0, 1, 30);  // slow write: window is wide
  checker.record_write_begin(1, 1, 20);
  checker.record_write_end(1, 1, 40);
  Scan scan{5, 50, {0, 1}, {1, 0}};  // old comp1 + new comp0: windows overlap
  EXPECT_TRUE(checker.check({scan}).ok);
}

TEST(RealtimeCheckerDeathTest, NeverWrittenValueRejected) {
  RealtimeChecker checker(1);
  Scan scan{0, 1, {0}, {7}};
  EXPECT_DEATH((void)checker.check({scan}), "never written");
}

TEST(RealtimeCheckerDeathTest, OutOfOrderWritesRejected) {
  RealtimeChecker checker(1);
  checker.record_write_begin(0, 1, 0);
  checker.record_write_end(0, 1, 1);
  EXPECT_DEATH(checker.record_write_begin(0, 3, 2), "in order");
}

}  // namespace
}  // namespace psnap::verify
