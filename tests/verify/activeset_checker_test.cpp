#include "verify/activeset_checker.h"

#include <gtest/gtest.h>

namespace psnap::verify {
namespace {

Operation member_op(Operation::Type type, std::uint32_t pid, std::uint64_t inv,
                    std::uint64_t res) {
  Operation op;
  op.type = type;
  op.pid = pid;
  op.invoke_seq = inv;
  op.respond_seq = res;
  return op;
}

Operation get_set(std::vector<std::uint32_t> result, std::uint64_t inv,
                  std::uint64_t res, std::uint32_t pid = 99) {
  Operation op;
  op.type = Operation::Type::kGetSet;
  op.pid = pid;
  op.set_result = std::move(result);
  op.invoke_seq = inv;
  op.respond_seq = res;
  return op;
}

TEST(ActiveSetChecker, EmptyHistoryOk) {
  EXPECT_TRUE(check_active_set_validity({}).ok);
}

TEST(ActiveSetChecker, ActiveProcessMustAppear) {
  std::vector<Operation> ops{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      get_set({1}, 2, 3),
  };
  EXPECT_TRUE(check_active_set_validity(ops).ok);
  ops[1] = get_set({}, 2, 3);
  auto outcome = check_active_set_validity(ops);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.diagnosis.find("missing"), std::string::npos);
}

TEST(ActiveSetChecker, InactiveProcessMustNotAppear) {
  std::vector<Operation> ops{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      member_op(Operation::Type::kLeave, 1, 2, 3),
      get_set({1}, 4, 5),
  };
  auto outcome = check_active_set_validity(ops);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.diagnosis.find("inactive"), std::string::npos);
}

TEST(ActiveSetChecker, NeverJoinedMustNotAppear) {
  std::vector<Operation> ops{
      get_set({3}, 0, 1),
      member_op(Operation::Type::kJoin, 3, 2, 3),
  };
  EXPECT_FALSE(check_active_set_validity(ops).ok);
}

TEST(ActiveSetChecker, MidJoinMayAppearEitherWay) {
  // Join overlaps the getSet: both answers valid.
  std::vector<Operation> with{
      member_op(Operation::Type::kJoin, 1, 0, 3),
      get_set({1}, 1, 2),
  };
  std::vector<Operation> without{
      member_op(Operation::Type::kJoin, 1, 0, 3),
      get_set({}, 1, 2),
  };
  EXPECT_TRUE(check_active_set_validity(with).ok);
  EXPECT_TRUE(check_active_set_validity(without).ok);
}

TEST(ActiveSetChecker, MidLeaveMayAppearEitherWay) {
  std::vector<Operation> with{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      member_op(Operation::Type::kLeave, 1, 2, 5),
      get_set({1}, 3, 4),
  };
  std::vector<Operation> without{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      member_op(Operation::Type::kLeave, 1, 2, 5),
      get_set({}, 3, 4),
  };
  EXPECT_TRUE(check_active_set_validity(with).ok);
  EXPECT_TRUE(check_active_set_validity(without).ok);
}

TEST(ActiveSetChecker, LeaveInvokedDuringGetSetReleasesObligation) {
  // p joined before G, but its leave was invoked before G responded:
  // p may be reported absent.
  std::vector<Operation> ops{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      get_set({}, 2, 5),
      member_op(Operation::Type::kLeave, 1, 3, 4),
  };
  EXPECT_TRUE(check_active_set_validity(ops).ok);
}

TEST(ActiveSetChecker, RejoinObligationTracksLatestState) {
  std::vector<Operation> ops{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      member_op(Operation::Type::kLeave, 1, 2, 3),
      member_op(Operation::Type::kJoin, 1, 4, 5),
      get_set({1}, 6, 7),
  };
  EXPECT_TRUE(check_active_set_validity(ops).ok);
  ops[3] = get_set({}, 6, 7);
  EXPECT_FALSE(check_active_set_validity(ops).ok);
}

TEST(ActiveSetChecker, AlternationViolationDetected) {
  std::vector<Operation> ops{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      member_op(Operation::Type::kJoin, 1, 2, 3),
  };
  auto outcome = check_active_set_validity(ops);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.diagnosis.find("alternation"), std::string::npos);
}

TEST(ActiveSetChecker, LeaveFirstViolatesAlternation) {
  std::vector<Operation> ops{
      member_op(Operation::Type::kLeave, 1, 0, 1),
  };
  EXPECT_FALSE(check_active_set_validity(ops).ok);
}

TEST(ActiveSetChecker, MultipleProcessesIndependent) {
  std::vector<Operation> ops{
      member_op(Operation::Type::kJoin, 1, 0, 1),
      member_op(Operation::Type::kJoin, 2, 2, 3),
      member_op(Operation::Type::kLeave, 1, 4, 5),
      get_set({2}, 6, 7),
  };
  EXPECT_TRUE(check_active_set_validity(ops).ok);
}

}  // namespace
}  // namespace psnap::verify
