// Global operator new/delete replacements that count allocations.
//
// Shared by the allocation-freedom suites (scan_alloc_test,
// update_alloc_test), each of which is its own test binary precisely so
// it can own the global allocator.  Include this header in EXACTLY ONE
// translation unit per binary: it defines (not just declares) the
// replacement operators, which the standard requires to be non-inline
// definitions with external linkage.
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace psnap::test {

// Total allocations since process start (relaxed; the suites read deltas
// around single-threaded measurement windows).
inline std::atomic<std::uint64_t> g_allocations{0};

inline void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (size + align - 1) / align * align))
    return p;
  throw std::bad_alloc();
}

}  // namespace psnap::test

void* operator new(std::size_t size) {
  return psnap::test::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return psnap::test::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return psnap::test::counted_aligned_alloc(size,
                                            static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return psnap::test::counted_aligned_alloc(size,
                                            static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
