// Shared helpers for parameterizing gtest suites over the implementation
// registry.  Replaces the per-file `struct Impl { label; factory; }`
// tables: tests pick a capability filter instead of hand-curating lists,
// so a newly registered implementation is covered everywhere it qualifies.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "registry/registry.h"

namespace psnap::test {

using SnapshotFilter = std::function<bool(const registry::SnapshotInfo&)>;
using ActiveSetFilter = std::function<bool(const registry::ActiveSetInfo&)>;

inline std::vector<const registry::SnapshotInfo*> snapshot_impls(
    const SnapshotFilter& filter = nullptr) {
  std::vector<const registry::SnapshotInfo*> out;
  for (const registry::SnapshotInfo* info :
       registry::SnapshotRegistry::instance().all()) {
    if (!filter || filter(*info)) out.push_back(info);
  }
  return out;
}

inline std::vector<const registry::ActiveSetInfo*> active_set_impls(
    const ActiveSetFilter& filter = nullptr) {
  std::vector<const registry::ActiveSetInfo*> out;
  for (const registry::ActiveSetInfo* info :
       registry::ActiveSetRegistry::instance().all()) {
    if (!filter || filter(*info)) out.push_back(info);
  }
  return out;
}

// Default-options construction, the common case in tests.
inline std::unique_ptr<core::PartialSnapshot> make_snapshot(
    const registry::SnapshotInfo& info, std::uint32_t m, std::uint32_t n) {
  return info.make(m, n, registry::Options{});
}

inline std::unique_ptr<activeset::ActiveSet> make_active_set(
    const registry::ActiveSetInfo& info, std::uint32_t n) {
  return info.make(n, registry::Options{});
}

// gtest parameter-name generators (registry names are identifier-safe).
inline std::string snapshot_param_name(
    const ::testing::TestParamInfo<const registry::SnapshotInfo*>& info) {
  return info.param->name;
}

inline std::string active_set_param_name(
    const ::testing::TestParamInfo<const registry::ActiveSetInfo*>& info) {
  return info.param->name;
}

}  // namespace psnap::test
